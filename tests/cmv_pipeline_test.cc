#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "core/cmv_pipeline.h"
#include "core/metrics.h"
#include "cues/cue_extractor.h"
#include "media/draw.h"
#include "media/ppm.h"
#include "shot/rep_frame.h"
#include "skim/playback.h"
#include "skim/skimmer.h"
#include "synth/corpus.h"
#include "util/rng.h"
#include "util/serial.h"

namespace classminer {
namespace {

class CmvPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generated_ = new synth::GeneratedVideo(
        synth::GenerateVideo(synth::QuickScript(31)));
    codec::EncoderOptions eopts;
    eopts.quality = 6;
    file_ = new codec::CmvFile(core::PackGeneratedVideo(*generated_, eopts));
  }
  static void TearDownTestSuite() {
    delete file_;
    delete generated_;
    file_ = nullptr;
    generated_ = nullptr;
  }

  static synth::GeneratedVideo* generated_;
  static codec::CmvFile* file_;
};

synth::GeneratedVideo* CmvPipelineTest::generated_ = nullptr;
codec::CmvFile* CmvPipelineTest::file_ = nullptr;

TEST_F(CmvPipelineTest, PackEmbedsAudio) {
  EXPECT_EQ(file_->audio_sample_rate, generated_->audio.sample_rate());
  EXPECT_EQ(file_->audio_pcm.size(), generated_->audio.sample_count());
  EXPECT_EQ(file_->frame_count(), generated_->video.frame_count());
}

TEST_F(CmvPipelineTest, MineFromCompressedMatchesTruth) {
  util::StatusOr<core::MiningResult> mined = core::MineCmvFile(*file_);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const core::CutScore cuts = core::ScoreCuts(
      mined->shot_trace.cuts, generated_->truth.CutPositions());
  EXPECT_GE(cuts.recall, 0.9);
  EXPECT_GE(cuts.precision, 0.9);
  // Events survive the codec round trip.
  core::EventScoreTable table;
  core::AccumulateEventScores(mined->structure, mined->events,
                              generated_->truth, &table);
  core::FinalizeEventScores(&table);
  EXPECT_GE(table.Average().recall, 0.5);
}

TEST_F(CmvPipelineTest, FastPathFindsSameShotCount) {
  util::StatusOr<core::MiningResult> full = core::MineCmvFile(*file_);
  util::StatusOr<core::MiningResult> fast =
      core::MineCmvFileFast(*file_, core::MiningOptions());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(fast.ok());
  const int d = static_cast<int>(full->structure.shots.size()) -
                static_cast<int>(fast->structure.shots.size());
  EXPECT_LE(std::abs(d), 2) << "pixel vs DC shot counts diverged";
}

TEST_F(CmvPipelineTest, CorruptFileSurfacesError) {
  codec::CmvFile broken = *file_;
  broken.width = 0;
  EXPECT_FALSE(core::MineCmvFile(broken).ok());
}

TEST_F(CmvPipelineTest, FastPathDecodesStrictlyFewerFrames) {
  ASSERT_GT(file_->gop_count(), 1) << "corpus must span multiple GOPs";
  util::StatusOr<core::MiningResult> fast =
      core::MineCmvFileFast(*file_, core::MiningOptions());
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  // The synthetic decode row reports frames actually decoded by the
  // selective FrameSource: strictly fewer than a full decode on multi-GOP
  // input, with GOP/cache counters attached.
  const core::StageMetrics* decode = fast->metrics.Find("decode");
  ASSERT_NE(decode, nullptr);
  EXPECT_GT(decode->items, 0);
  EXPECT_LT(decode->items, file_->frame_count());
  EXPECT_GT(decode->Counter("gops"), 0);
  EXPECT_GE(decode->Counter("cache_hits"), 0);
  // The stage table leads with decode, like the full path.
  EXPECT_EQ(fast->metrics.stages.front().name, "decode");
}

TEST_F(CmvPipelineTest, FastPathBitIdenticalToFullDecodeReference) {
  // Reference: the same DC-domain shot spans, but with representative
  // frames and cues computed from a complete DecodeVideo pass. Selective
  // GOP decoding must reproduce this exactly (same decode core, GOPs are
  // self-contained), at any thread count.
  util::StatusOr<media::Video> video = codec::DecodeVideo(*file_);
  ASSERT_TRUE(video.ok());
  util::StatusOr<std::vector<media::GrayImage>> dc =
      codec::DecodeDcImages(*file_);
  ASSERT_TRUE(dc.ok());
  const core::MiningOptions ref_options;
  std::vector<shot::Shot> ref_shots =
      shot::DetectShotsFromDc(*dc, ref_options.shot);
  shot::PopulateRepresentativeFrames(*video, &ref_shots);
  const std::vector<cues::FrameCues> ref_cues =
      cues::ExtractShotCues(*video, ref_shots, ref_options.cues);

  for (const int threads : {1, 4}) {
    core::MiningOptions options;
    options.thread_count = threads;
    util::StatusOr<core::MiningResult> fast =
        core::MineCmvFileFast(*file_, options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    SCOPED_TRACE("threads " + std::to_string(threads));

    ASSERT_EQ(fast->structure.shots.size(), ref_shots.size());
    for (size_t i = 0; i < ref_shots.size(); ++i) {
      const shot::Shot& r = ref_shots[i];
      const shot::Shot& f = fast->structure.shots[i];
      EXPECT_EQ(f.start_frame, r.start_frame);
      EXPECT_EQ(f.end_frame, r.end_frame);
      EXPECT_EQ(f.rep_frame, r.rep_frame);
      for (size_t k = 0; k < r.features.histogram.size(); ++k) {
        ASSERT_EQ(f.features.histogram[k], r.features.histogram[k]);
      }
      for (size_t k = 0; k < r.features.tamura.size(); ++k) {
        ASSERT_EQ(f.features.tamura[k], r.features.tamura[k]);
      }
    }

    ASSERT_EQ(fast->shot_cues.size(), ref_cues.size());
    for (size_t i = 0; i < ref_cues.size(); ++i) {
      const cues::FrameCues& r = ref_cues[i];
      const cues::FrameCues& f = fast->shot_cues[i];
      EXPECT_EQ(f.special, r.special);
      EXPECT_EQ(f.has_face, r.has_face);
      EXPECT_EQ(f.face_closeup, r.face_closeup);
      EXPECT_EQ(f.max_face_fraction, r.max_face_fraction);
      EXPECT_EQ(f.has_skin_region, r.has_skin_region);
      EXPECT_EQ(f.skin_closeup, r.skin_closeup);
      EXPECT_EQ(f.max_skin_fraction, r.max_skin_fraction);
      EXPECT_EQ(f.has_blood, r.has_blood);
      EXPECT_EQ(f.max_blood_fraction, r.max_blood_fraction);
    }
  }
}

TEST_F(CmvPipelineTest, FastPathTinyGopCacheStaysBitIdentical) {
  // A 1-GOP cache forces maximal eviction; results must not change, only
  // the decode counters (more GOP decodes, fewer hits).
  core::MiningOptions roomy;
  core::MiningOptions tiny;
  tiny.gop_cache_capacity = 1;
  util::StatusOr<core::MiningResult> a = core::MineCmvFileFast(*file_, roomy);
  util::StatusOr<core::MiningResult> b = core::MineCmvFileFast(*file_, tiny);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->structure.shots.size(), b->structure.shots.size());
  for (size_t i = 0; i < a->structure.shots.size(); ++i) {
    EXPECT_EQ(b->structure.shots[i].rep_frame,
              a->structure.shots[i].rep_frame);
    for (size_t k = 0; k < a->structure.shots[i].features.histogram.size();
         ++k) {
      ASSERT_EQ(b->structure.shots[i].features.histogram[k],
                a->structure.shots[i].features.histogram[k]);
    }
  }
  ASSERT_EQ(a->events.size(), b->events.size());
  const core::StageMetrics* da = a->metrics.Find("decode");
  const core::StageMetrics* db = b->metrics.Find("decode");
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_GE(db->Counter("gops"), da->Counter("gops"));
}

TEST(PpmTest, RoundTrip) {
  util::Rng rng(9);
  media::Image img(17, 11);
  media::AddNoise(&img, 255, &rng);
  const std::string path = ::testing::TempDir() + "/round.ppm";
  ASSERT_TRUE(media::WritePpm(img, path).ok());
  util::StatusOr<media::Image> back = media::ReadPpm(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, img);
}

TEST(PpmTest, GrayExport) {
  media::GrayImage gray(4, 4, 128);
  const std::string path = ::testing::TempDir() + "/gray.ppm";
  ASSERT_TRUE(media::WritePpm(gray, path).ok());
  util::StatusOr<media::Image> back = media::ReadPpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(2, 2), (media::Rgb{128, 128, 128}));
}

TEST(PpmTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.ppm";
  ASSERT_TRUE(util::WriteFile(path, {'X', 'Y', 'Z'}).ok());
  EXPECT_FALSE(media::ReadPpm(path).ok());
}

TEST(PlaybackTest, PlanMatchesSkimTrack) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(32));
  util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(mined.ok());
  const skim::ScalableSkim sk(&mined->structure);
  const double fps = g.video.fps();

  const auto plan1 = skim::BuildPlaybackPlan(sk, 1, fps);
  EXPECT_EQ(plan1.size(), mined->structure.shots.size());
  // Level 1 plays everything: duration equals the full video.
  EXPECT_NEAR(skim::PlanDurationSeconds(plan1), g.video.DurationSeconds(),
              0.2);

  const auto plan3 = skim::BuildPlaybackPlan(sk, 3, fps);
  EXPECT_LT(skim::PlanDurationSeconds(plan3),
            skim::PlanDurationSeconds(plan1));
  // Segments are ordered and non-overlapping.
  for (size_t i = 1; i < plan3.size(); ++i) {
    EXPECT_GE(plan3[i].start_sec, plan3[i - 1].end_sec - 1e-9);
  }
}

TEST(PlaybackTest, LevelSwitchResumesForward) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(33));
  util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(mined.ok());
  const skim::ScalableSkim sk(&mined->structure);
  const auto plan = skim::BuildPlaybackPlan(sk, 2, g.video.fps());
  ASSERT_GE(plan.size(), 2u);
  // Resuming from before everything lands on segment 0; from mid-video it
  // lands on a segment ending after the position.
  EXPECT_EQ(skim::ResumeIndexAfterSwitch(plan, 0.0), 0u);
  const double mid = g.video.DurationSeconds() / 2.0;
  const size_t idx = skim::ResumeIndexAfterSwitch(plan, mid);
  EXPECT_GT(plan[idx].end_sec, mid);
  // Past the end: clamps to the final segment.
  EXPECT_EQ(skim::ResumeIndexAfterSwitch(plan, 1e9),
            plan.size() - 1);
}

}  // namespace
}  // namespace classminer

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "media/color.h"
#include "media/draw.h"
#include "structure/content_structure.h"
#include "structure/group_similarity.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace classminer::structure {
namespace {

// Builds a shot with features from a solid-colour frame (plus mild noise so
// features are not degenerate).
shot::Shot MakeShot(int index, media::Rgb color, int frames = 30,
                    uint64_t seed = 1) {
  util::Rng rng(seed + static_cast<uint64_t>(index));
  media::Image img(48, 36, color);
  media::AddNoise(&img, 4, &rng);
  shot::Shot s;
  s.index = index;
  s.start_frame = index * frames;
  s.end_frame = (index + 1) * frames - 1;
  s.rep_frame = s.start_frame + 9;
  s.features = features::ExtractShotFeatures(img);
  return s;
}

media::Rgb Hue(double h) { return media::HsvToRgb({h, 0.7, 0.8}); }

// Shots forming: sceneA = [A B A B A B], sceneB = [C C C C], sceneC =
// [D E D E]. Distinct hues per letter.
std::vector<shot::Shot> ThreeSceneShots() {
  std::vector<shot::Shot> shots;
  const media::Rgb a = Hue(0), b = Hue(40), c = Hue(140), d = Hue(220),
                   e = Hue(280);
  int i = 0;
  for (int k = 0; k < 3; ++k) {
    shots.push_back(MakeShot(i++, a));
    shots.push_back(MakeShot(i++, b));
  }
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, c));
  for (int k = 0; k < 2; ++k) {
    shots.push_back(MakeShot(i++, d));
    shots.push_back(MakeShot(i++, e));
  }
  return shots;
}

TEST(GroupSimilarityTest, IdenticalGroupsScoreHigh) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<int> g{0, 2, 4};  // all colour A
  EXPECT_GT(GpSim(shots, g, g), 0.95);
}

TEST(GroupSimilarityTest, DisjointColoursScoreLow) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<int> ga{0, 2};   // colour A
  const std::vector<int> gc{6, 7};   // colour C
  EXPECT_LT(GpSim(shots, ga, gc), 0.5);
}

TEST(GroupSimilarityTest, SymmetricAndBenchmarkedOnSmaller) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<int> small{0};
  const std::vector<int> large{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(GpSim(shots, small, large), GpSim(shots, large, small));
  // The single A shot finds its A matches inside the large group.
  EXPECT_GT(GpSim(shots, small, large), 0.9);
}

TEST(GroupSimilarityTest, EmptyGroupIsZero) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  EXPECT_EQ(GpSim(shots, {}, std::vector<int>{0}), 0.0);
}

TEST(StGpSimTest, MaxOverMembers) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<int> mixed{1, 6};  // colours B and C
  // Shot 3 is colour B: best match inside `mixed` is the B shot.
  EXPECT_GT(StGpSim(shots, 3, mixed), 0.9);
}

TEST(GroupDetectorTest, AlternatingShotsFormOneGroup) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  GroupDetectorTrace trace;
  const std::vector<Group> groups = DetectGroups(shots, {}, &trace);
  ASSERT_FALSE(groups.empty());
  // Shots 0..5 alternate A/B: the i,i+2 correlation keeps them together.
  EXPECT_EQ(groups[0].start_shot, 0);
  EXPECT_GE(groups[0].end_shot, 4);
  // Groups tile the sequence.
  int next = 0;
  for (const Group& g : groups) {
    EXPECT_EQ(g.start_shot, next);
    next = g.end_shot + 1;
  }
  EXPECT_EQ(next, static_cast<int>(shots.size()));
}

TEST(GroupDetectorTest, BoundaryAtColourChange) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<Group> groups = DetectGroups(shots);
  // Some group must start exactly at shot 6 (scene A -> scene B change).
  bool found = false;
  for (const Group& g : groups) found |= g.start_shot == 6;
  EXPECT_TRUE(found);
}

TEST(GroupDetectorTest, EmptyInput) {
  EXPECT_TRUE(DetectGroups({}).empty());
}

TEST(GroupClassifyTest, AlternatingGroupIsTemporal) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  Group g;
  g.start_shot = 0;
  g.end_shot = 5;  // A B A B A B
  ClassifyGroup(shots, &g);
  EXPECT_TRUE(g.temporally_related);
  EXPECT_EQ(g.clusters.size(), 2u);
  EXPECT_EQ(g.rep_shots.size(), 2u);
}

TEST(GroupClassifyTest, UniformGroupIsSpatial) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  Group g;
  g.start_shot = 6;
  g.end_shot = 9;  // C C C C
  ClassifyGroup(shots, &g);
  EXPECT_FALSE(g.temporally_related);
  EXPECT_EQ(g.clusters.size(), 1u);
}

TEST(SelectRepShotTest, SingletonAndPairRules) {
  std::vector<shot::Shot> shots;
  shots.push_back(MakeShot(0, Hue(10), /*frames=*/20));
  shots.push_back(MakeShot(1, Hue(10), /*frames=*/50));
  EXPECT_EQ(SelectRepresentativeShot(shots, {0}), 0);
  // Pair: longer duration wins.
  EXPECT_EQ(SelectRepresentativeShot(shots, {0, 1}), 1);
}

TEST(SelectRepShotTest, MedoidForLargerClusters) {
  // Three shots: two identical hues and one slightly off; a medoid must be
  // one of the two identical ones.
  std::vector<shot::Shot> shots;
  shots.push_back(MakeShot(0, Hue(10)));
  shots.push_back(MakeShot(1, Hue(10)));
  shots.push_back(MakeShot(2, Hue(25)));
  const int rep = SelectRepresentativeShot(shots, {0, 1, 2});
  EXPECT_TRUE(rep == 0 || rep == 1);
}

TEST(SceneDetectorTest, MergesGroupsOfSameScene) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  SceneDetectorTrace trace;
  const std::vector<Scene> scenes = DetectScenes(shots, groups, {}, &trace);
  ASSERT_FALSE(scenes.empty());
  // Scenes tile groups.
  int next = 0;
  for (const Scene& s : scenes) {
    EXPECT_EQ(s.start_group, next);
    next = s.end_group + 1;
    EXPECT_GE(s.rep_group, 0);
  }
  EXPECT_EQ(next, static_cast<int>(groups.size()));
}

TEST(SceneDetectorTest, ShortScenesEliminated) {
  // Two long same-colour groups with one single-shot interloper.
  std::vector<shot::Shot> shots;
  int i = 0;
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, Hue(0)));
  shots.push_back(MakeShot(i++, Hue(180)));
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, Hue(90)));
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  bool any_eliminated = false;
  for (const Scene& s : scenes) {
    int count = 0;
    for (int g = s.start_group; g <= s.end_group; ++g) {
      count += groups[static_cast<size_t>(g)].shot_count();
    }
    if (count < 3) {
      EXPECT_TRUE(s.eliminated);
      any_eliminated = true;
    }
  }
  EXPECT_TRUE(any_eliminated);
}

TEST(SelectRepGroupTest, PairPrefersMoreShots) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  Group g1;
  g1.index = 0;
  g1.start_shot = 0;
  g1.end_shot = 1;
  Group g2;
  g2.index = 1;
  g2.start_shot = 2;
  g2.end_shot = 5;
  const std::vector<Group> groups{g1, g2};
  EXPECT_EQ(SelectRepresentativeGroup(shots, groups, {0, 1}), 1);
}

TEST(SceneClusterTest, RepeatedScenesMerge) {
  // Scenes: A, B, A', C where A and A' share colour. Expect the clustering
  // to put A and A' in one cluster.
  std::vector<shot::Shot> shots;
  int i = 0;
  auto add_run = [&](double hue, int n) {
    for (int k = 0; k < n; ++k) shots.push_back(MakeShot(i++, Hue(hue)));
  };
  add_run(0, 4);
  add_run(120, 4);
  add_run(0, 4);
  add_run(240, 4);

  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  SceneClusterOptions opts;
  opts.fixed_clusters = 3;
  const std::vector<SceneCluster> clusters =
      ClusterScenes(shots, groups, scenes, opts);
  ASSERT_EQ(clusters.size(), 3u);
  // One cluster must contain two scenes (the repeated A).
  bool merged = false;
  for (const SceneCluster& c : clusters) merged |= c.scene_indices.size() == 2;
  EXPECT_TRUE(merged);
}

TEST(SceneClusterTest, ValidityPrefersCorrectPairing) {
  // Four scenes of two colour families (A, B, A', B'). At the same cluster
  // count, pairing same-colour scenes must score better (lower rho) than
  // pairing across colours — this is exactly how PCS uses the index.
  std::vector<shot::Shot> shots;
  int i = 0;
  auto add_run = [&](double hue, int n) {
    for (int k = 0; k < n; ++k) shots.push_back(MakeShot(i++, Hue(hue)));
  };
  add_run(0, 3);
  add_run(120, 3);
  add_run(2, 3);
  add_run(122, 3);
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  ASSERT_GE(scenes.size(), 4u);

  auto make_cluster = [&](int s0, int s1) {
    SceneCluster c;
    c.scene_indices = {scenes[static_cast<size_t>(s0)].index,
                       scenes[static_cast<size_t>(s1)].index};
    std::vector<int> members;
    for (int s : {s0, s1}) {
      const Scene& scene = scenes[static_cast<size_t>(s)];
      for (int g = scene.start_group; g <= scene.end_group; ++g) {
        members.push_back(g);
      }
    }
    c.rep_group = SelectRepresentativeGroup(shots, groups, members);
    return c;
  };

  const std::vector<SceneCluster> correct{make_cluster(0, 2),
                                          make_cluster(1, 3)};
  const std::vector<SceneCluster> wrong{make_cluster(0, 1),
                                        make_cluster(2, 3)};
  EXPECT_LT(ClusterValidity(shots, groups, correct, scenes),
            ClusterValidity(shots, groups, wrong, scenes));
}

TEST(GroupSimilarityTest, DegenerateInputsYieldZero) {
  const std::vector<shot::Shot> shots = ThreeSceneShots();
  const std::vector<int> some{0, 2};
  // Empty groups: no similarity, no division by zero.
  EXPECT_EQ(GpSim(shots, {}, some), 0.0);
  EXPECT_EQ(GpSim(shots, some, {}), 0.0);
  EXPECT_EQ(GpSim(shots, std::span<const int>{}, std::span<const int>{}),
            0.0);
  // Out-of-range shot index reads as no similarity rather than faulting.
  EXPECT_EQ(StGpSim(shots, -1, some), 0.0);
  EXPECT_EQ(StGpSim(shots, static_cast<int>(shots.size()), some), 0.0);
  EXPECT_EQ(StGpSim(shots, 0, {}), 0.0);
}

TEST(GroupSimilarityTest, ZeroNormHistogramsStayFinite) {
  // Shots with all-zero features (e.g. from an empty frame) must produce a
  // finite similarity, not NaN.
  std::vector<shot::Shot> shots(2);
  shots[0].index = 0;
  shots[1].index = 1;
  const std::vector<int> ga{0};
  const std::vector<int> gb{1};
  const double sim = GpSim(shots, ga, gb);
  EXPECT_TRUE(std::isfinite(sim));
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

TEST(SceneClusterTest, TwoScenesAreNotForceMerged) {
  // M = 2 distinct scenes: Cmin = ceil(0.5 * 2) = 1, Cmax = ceil(0.7 * 2)
  // = 2. With clearly different colours the validity index must keep them
  // apart instead of collapsing to a single cluster (the old floor-based
  // range forced [1, 1]).
  std::vector<shot::Shot> shots;
  int i = 0;
  auto add_run = [&](double hue, int n) {
    for (int k = 0; k < n; ++k) shots.push_back(MakeShot(i++, Hue(hue)));
  };
  add_run(0, 4);
  add_run(140, 4);
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);

  int active = 0;
  for (const Scene& s : scenes) active += s.eliminated ? 0 : 1;
  if (active != 2) GTEST_SKIP() << "detector produced " << active
                                << " scenes; clamp test needs 2";
  const std::vector<SceneCluster> clusters =
      ClusterScenes(shots, groups, scenes);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(SceneClusterTest, SingleSceneMatrixPassesThrough) {
  std::vector<shot::Shot> shots;
  for (int i = 0; i < 4; ++i) shots.push_back(MakeShot(i, Hue(0)));
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  const std::vector<SceneCluster> clusters =
      ClusterScenes(shots, groups, scenes);
  // However many active scenes exist (possibly one), clustering must never
  // request more clusters than scenes nor fault on the tiny matrix.
  size_t active = 0;
  for (const Scene& s : scenes) active += s.eliminated ? 0u : 1u;
  EXPECT_LE(clusters.size(), std::max<size_t>(active, 1));
}

TEST(SceneClusterTest, FixedClustersClampedToSceneCount) {
  std::vector<shot::Shot> shots;
  int i = 0;
  auto add_run = [&](double hue, int n) {
    for (int k = 0; k < n; ++k) shots.push_back(MakeShot(i++, Hue(hue)));
  };
  add_run(0, 4);
  add_run(140, 4);
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  SceneClusterOptions opts;
  opts.fixed_clusters = 99;  // far more clusters than scenes
  const std::vector<SceneCluster> clusters =
      ClusterScenes(shots, groups, scenes, opts);
  size_t active = 0;
  for (const Scene& s : scenes) active += s.eliminated ? 0u : 1u;
  EXPECT_EQ(clusters.size(), active);
}

TEST(SceneClusterTest, ParallelClusteringMatchesSerial) {
  std::vector<shot::Shot> shots;
  int i = 0;
  auto add_run = [&](double hue, int n) {
    for (int k = 0; k < n; ++k) shots.push_back(MakeShot(i++, Hue(hue)));
  };
  add_run(0, 4);
  add_run(120, 4);
  add_run(2, 4);
  add_run(240, 4);
  add_run(122, 4);
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);

  const std::vector<SceneCluster> serial =
      ClusterScenes(shots, groups, scenes);
  util::ThreadPool pool(4);
  const std::vector<SceneCluster> parallel =
      ClusterScenes(shots, groups, scenes, {}, nullptr, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(parallel[c].scene_indices, serial[c].scene_indices);
    EXPECT_EQ(parallel[c].rep_group, serial[c].rep_group);
  }
  EXPECT_EQ(ClusterValidity(shots, groups, parallel, scenes, {}, &pool),
            ClusterValidity(shots, groups, serial, scenes));
}

TEST(SceneClusterTest, ValidityDegenerateStates) {
  std::vector<shot::Shot> shots;
  for (int i = 0; i < 3; ++i) shots.push_back(MakeShot(i, Hue(0)));
  std::vector<Group> groups = DetectGroups(shots);
  ClassifyGroups(shots, &groups);
  const std::vector<Scene> scenes = DetectScenes(shots, groups);
  // Fewer than two clusters: validity is undefined -> max sentinel.
  SceneCluster single;
  single.scene_indices = {0};
  single.rep_group = 0;
  EXPECT_EQ(ClusterValidity(shots, groups, {single}, scenes),
            std::numeric_limits<double>::max());
}

TEST(MineVideoStructureTest, FullHierarchyConsistent) {
  const ContentStructure cs = MineVideoStructure(ThreeSceneShots());
  EXPECT_EQ(cs.shots.size(), 14u);
  EXPECT_FALSE(cs.groups.empty());
  EXPECT_FALSE(cs.scenes.empty());
  EXPECT_GT(cs.CompressionRateFactor(), 0.0);
  EXPECT_LE(cs.CompressionRateFactor(), 1.0);
  // Every active scene appears in at most one cluster.
  std::vector<int> seen;
  for (const SceneCluster& c : cs.clustered_scenes) {
    for (int s : c.scene_indices) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), s), 0);
      seen.push_back(s);
    }
  }
}

}  // namespace
}  // namespace classminer::structure

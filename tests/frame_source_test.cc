// Selective GOP decoding: the per-GOP seek index, GopReader and the
// LRU-cached FrameSource. The load-bearing property throughout is
// bit-identity — any frame obtained selectively must equal (operator==)
// the same index of a full DecodeVideo pass.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/frame_source.h"
#include "codec/gop_reader.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer {
namespace {

// A small moving-gradient clip with enough texture that every frame encodes
// to a distinct payload (so index byte offsets are meaningful).
media::Video TestVideo(int frames, int w = 48, int h = 36) {
  util::Rng rng(77);
  media::Video video("gop-test", 10.0);
  media::Image base(w, h);
  media::FillGradient(&base, media::Rgb{60, 90, 140}, media::Rgb{20, 30, 50});
  media::FillEllipse(&base, w / 2, h / 2, w / 4, h / 4,
                     media::Rgb{205, 150, 120});
  for (int i = 0; i < frames; ++i) {
    media::Image f = media::Translated(base, i, i / 2);
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  return video;
}

codec::CmvFile EncodeTestFile(int frames, int gop_size) {
  codec::EncoderOptions opts;
  opts.gop_size = gop_size;
  return codec::EncodeVideo(TestVideo(frames), opts);
}

// ---------------------------------------------------------------- GOP index

TEST(GopIndexTest, EncoderEmitsConsistentIndex) {
  // 30 frames at GOP size 8: GOPs of 8, 8, 8 and a final partial 6.
  const codec::CmvFile file = EncodeTestFile(30, 8);
  ASSERT_EQ(file.gop_count(), 4);

  int next_frame = 0;
  uint64_t next_offset = 0;
  uint64_t total_bytes = 0;
  for (const codec::GopIndexEntry& g : file.gop_index) {
    EXPECT_EQ(g.start_frame, next_frame);
    EXPECT_EQ(g.byte_offset, next_offset);
    EXPECT_GT(g.frame_count, 0);
    EXPECT_GT(g.byte_size, 0u);
    EXPECT_EQ(file.frames[static_cast<size_t>(g.start_frame)].type,
              codec::FrameType::kIntra);
    next_frame += g.frame_count;
    next_offset += g.byte_size;
    total_bytes += g.byte_size;
  }
  EXPECT_EQ(next_frame, file.frame_count());
  EXPECT_EQ(total_bytes, file.VideoPayloadBytes());
  EXPECT_EQ(file.gop_index.back().frame_count, 6);
}

TEST(GopIndexTest, GopOfFrameCoversBoundaries) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  EXPECT_EQ(file.GopOfFrame(0), 0);
  EXPECT_EQ(file.GopOfFrame(7), 0);
  EXPECT_EQ(file.GopOfFrame(8), 1);
  EXPECT_EQ(file.GopOfFrame(23), 2);
  EXPECT_EQ(file.GopOfFrame(24), 3);
  EXPECT_EQ(file.GopOfFrame(29), 3);
  EXPECT_EQ(file.GopOfFrame(-1), -1);
  EXPECT_EQ(file.GopOfFrame(30), -1);
}

TEST(GopIndexTest, SerializeParseRoundTripPreservesIndex) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<codec::CmvFile> back = codec::CmvFile::Parse(file.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->gop_index, file.gop_index);
}

TEST(GopIndexTest, ParseRebuildsIndexForLegacyContainer) {
  // A container serialized without the trailing index section (what files
  // written before the index existed look like) parses fine and gets its
  // index rebuilt from the frame records.
  codec::CmvFile file = EncodeTestFile(30, 8);
  const std::vector<codec::GopIndexEntry> expected = file.gop_index;
  file.gop_index.clear();
  const std::vector<uint8_t> legacy_bytes = file.Serialize();

  util::StatusOr<codec::CmvFile> back = codec::CmvFile::Parse(legacy_bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->gop_index, expected);
}

TEST(GopIndexTest, TruncatedIndexFailsCleanly) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  const std::vector<uint8_t> bytes = file.Serialize();

  // Dropping one whole 24-byte entry trips the explicit count-vs-remaining
  // guard; dropping a few bytes mid-entry fails on the short read. Either
  // way: a clean Status, never a crash or a silently short index.
  for (const size_t cut : {size_t{24}, size_t{5}, size_t{1}}) {
    ASSERT_GT(bytes.size(), cut);
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.end() - static_cast<long>(cut));
    util::StatusOr<codec::CmvFile> back = codec::CmvFile::Parse(truncated);
    EXPECT_FALSE(back.ok()) << "cut " << cut << " bytes";
  }
}

TEST(GopIndexTest, TamperedIndexFailsValidation) {
  codec::CmvFile file = EncodeTestFile(30, 8);
  file.gop_index[1].frame_count += 1;
  util::StatusOr<codec::CmvFile> back = codec::CmvFile::Parse(file.Serialize());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kDataLoss);
}

TEST(GopIndexTest, StreamStartingWithPFrameCannotIndex) {
  codec::CmvFile file = EncodeTestFile(30, 8);
  file.frames.erase(file.frames.begin());  // now opens with a P-frame
  EXPECT_EQ(file.RebuildGopIndex().code(), util::StatusCode::kDataLoss);
  file.gop_index.clear();
  EXPECT_FALSE(codec::GopReader::Create(&file).ok());
}

// ---------------------------------------------------------------- GopReader

TEST(GopReaderTest, EveryGopMatchesFullDecodeSlice) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  util::StatusOr<codec::GopReader> reader = codec::GopReader::Create(&file);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->gop_count(), 4);

  for (int g = 0; g < reader->gop_count(); ++g) {
    util::StatusOr<std::vector<media::Image>> gop = reader->DecodeGop(g);
    ASSERT_TRUE(gop.ok()) << gop.status().ToString();
    const codec::GopIndexEntry& entry = reader->gop(g);
    ASSERT_EQ(static_cast<int>(gop->size()), entry.frame_count);
    for (int i = 0; i < entry.frame_count; ++i) {
      EXPECT_EQ((*gop)[static_cast<size_t>(i)],
                full->frame(entry.start_frame + i))
          << "gop " << g << " frame " << i;
    }
  }
}

TEST(GopReaderTest, SingleGopVideoDecodesWhole) {
  // GOP size larger than the clip: the whole video is one GOP.
  const codec::CmvFile file = EncodeTestFile(10, 100);
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok());

  util::StatusOr<codec::GopReader> reader = codec::GopReader::Create(&file);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->gop_count(), 1);
  EXPECT_EQ(reader->GopOfFrame(0), 0);
  EXPECT_EQ(reader->GopOfFrame(9), 0);

  util::StatusOr<std::vector<media::Image>> gop = reader->DecodeGop(0);
  ASSERT_TRUE(gop.ok());
  ASSERT_EQ(gop->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*gop)[static_cast<size_t>(i)], full->frame(i));
  }
}

TEST(GopReaderTest, RejectsBadGopIndexAndBadFile) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<codec::GopReader> reader = codec::GopReader::Create(&file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->DecodeGop(-1).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(reader->DecodeGop(reader->gop_count()).status().code(),
            util::StatusCode::kOutOfRange);

  EXPECT_FALSE(codec::GopReader::Create(nullptr).ok());
  codec::CmvFile broken = file;
  broken.width = 0;
  EXPECT_FALSE(codec::GopReader::Create(&broken).ok());
  codec::CmvFile stale = file;
  stale.gop_index[0].byte_size += 1;  // stored index disagrees with frames
  EXPECT_EQ(codec::GopReader::Create(&stale).status().code(),
            util::StatusCode::kDataLoss);
}

// -------------------------------------------------------------- FrameSource

TEST(FrameSourceTest, EveryFrameBitIdenticalToFullDecode) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok());

  codec::FrameSource::Options options;
  options.cache_capacity_gops = 2;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  for (int i = 0; i < file.frame_count(); ++i) {
    util::StatusOr<codec::FrameHandle> frame = (*source)->GetFrame(i);
    ASSERT_TRUE(frame.ok()) << "frame " << i << ": "
                            << frame.status().ToString();
    EXPECT_EQ(frame->image(), full->frame(i)) << "frame " << i;
  }

  // Forward sequential access decodes each GOP exactly once even with a
  // 2-GOP cache; every other request is a hit.
  const codec::FrameSource::Stats stats = (*source)->stats();
  EXPECT_EQ(stats.decoded_gops, 4);
  EXPECT_EQ(stats.decoded_frames, 30);
  EXPECT_EQ(stats.cache_misses, 4);
  EXPECT_EQ(stats.cache_hits, 26);
}

TEST(FrameSourceTest, SparseAccessDecodesOnlyTouchedGops) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file);
  ASSERT_TRUE(source.ok());

  // One frame from GOP 2 only: exactly that GOP (8 frames) gets decoded —
  // the whole point of the selective path.
  ASSERT_TRUE((*source)->GetFrame(18).ok());
  const codec::FrameSource::Stats stats = (*source)->stats();
  EXPECT_EQ(stats.decoded_gops, 1);
  EXPECT_EQ(stats.decoded_frames, 8);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_LT(stats.decoded_frames, file.frame_count());
}

TEST(FrameSourceTest, LruEvictsUnderTinyCache) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok());

  codec::FrameSource::Options options;
  options.cache_capacity_gops = 1;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, options);
  ASSERT_TRUE(source.ok());

  util::StatusOr<codec::FrameHandle> pinned = (*source)->GetFrame(0);  // miss
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE((*source)->GetFrame(1).ok());   // hit (same GOP)
  ASSERT_TRUE((*source)->GetFrame(8).ok());   // miss, evicts GOP 0
  ASSERT_TRUE((*source)->GetFrame(0).ok());   // miss again, evicts GOP 1

  const codec::FrameSource::Stats stats = (*source)->stats();
  EXPECT_EQ(stats.decoded_gops, 3);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.evictions, 2);

  // The handle taken before eviction still pins its GOP: the image stays
  // valid and bit-identical after the cache dropped the entry.
  EXPECT_EQ(pinned->image(), full->frame(0));
}

TEST(FrameSourceTest, AdaptiveCapacityStopsScanThrashing) {
  // 40 frames at GOP size 8: five GOPs. A repeated scan touching one frame
  // per GOP is the LRU worst case for a capacity-1 cache — every access
  // evicts the GOP the next sweep needs, so a fixed cache re-decodes the
  // whole file on every pass.
  const codec::CmvFile file = EncodeTestFile(40, 8);
  ASSERT_EQ(file.gop_count(), 5);
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok());
  const std::vector<int> sweep = {0, 8, 16, 24, 32};  // one frame per GOP

  // Fixed capacity 1: thrashes forever — 5 decodes per sweep, no hits.
  codec::FrameSource::Options fixed;
  fixed.cache_capacity_gops = 1;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> fixed_source =
      codec::FrameSource::Create(&file, fixed);
  ASSERT_TRUE(fixed_source.ok());
  for (int pass = 0; pass < 3; ++pass) {
    for (int f : sweep) ASSERT_TRUE((*fixed_source)->GetFrame(f).ok());
  }
  EXPECT_EQ((*fixed_source)->stats().decoded_gops, 15);
  EXPECT_EQ((*fixed_source)->stats().cache_hits, 0);
  EXPECT_EQ((*fixed_source)->stats().capacity_gops, 1);

  // Same base capacity with an adaptive ceiling: the second sweep's misses
  // land on GOPs already decoded once, so the source recognises eviction
  // thrash and doubles 1 -> 2 -> 4 -> 8. From the third sweep on, the whole
  // working set fits and every access is a hit.
  codec::FrameSource::Options adaptive;
  adaptive.cache_capacity_gops = 1;
  adaptive.cache_capacity_max_gops = 8;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, adaptive);
  ASSERT_TRUE(source.ok());
  for (int pass = 0; pass < 3; ++pass) {
    for (int f : sweep) ASSERT_TRUE((*source)->GetFrame(f).ok());
  }
  codec::FrameSource::Stats stats = (*source)->stats();
  EXPECT_EQ(stats.decoded_gops, 9);  // 5 first-time + 4 thrash re-decodes
  EXPECT_EQ(stats.capacity_grows, 3);
  EXPECT_EQ(stats.capacity_gops, 8);

  // Plateau: further sweeps decode nothing new and stay bit-identical.
  for (int f : sweep) {
    util::StatusOr<codec::FrameHandle> h = (*source)->GetFrame(f);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->image(), full->frame(f));
  }
  EXPECT_EQ((*source)->stats().decoded_gops, 9);

  // Contraction: hammering a single GOP gives miss-free windows touching
  // far less than half the grown capacity, so it halves back to base
  // (8 -> 4 -> 2 -> 1) without re-decoding the hot GOP.
  for (int i = 0; i < 6 * 64; ++i) ASSERT_TRUE((*source)->GetFrame(0).ok());
  stats = (*source)->stats();
  EXPECT_EQ(stats.capacity_gops, 1);
  EXPECT_EQ(stats.capacity_shrinks, 3);
  EXPECT_EQ(stats.decoded_gops, 9);
}

TEST(FrameSourceTest, OutOfRangeFrameFails) {
  const codec::CmvFile file = EncodeTestFile(10, 8);
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->GetFrame(-1).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ((*source)->GetFrame(file.frame_count()).status().code(),
            util::StatusCode::kOutOfRange);
}

TEST(FrameSourceTest, CancellationStopsDecodeLoops) {
  const codec::CmvFile file = EncodeTestFile(30, 8);
  util::CancellationToken cancel;
  cancel.Cancel();

  EXPECT_EQ(codec::DecodeVideo(file, &cancel).status().code(),
            util::StatusCode::kCancelled);
  EXPECT_EQ(codec::DecodeDcImages(file, &cancel).status().code(),
            util::StatusCode::kCancelled);

  codec::FrameSource::Options options;
  options.cancel = &cancel;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, options);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->GetFrame(0).status().code(),
            util::StatusCode::kCancelled);

  util::StatusOr<codec::GopReader> reader = codec::GopReader::Create(&file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->DecodeGop(0, &cancel).status().code(),
            util::StatusCode::kCancelled);
}

// TSAN-run suite (scripts/tier1.sh): many threads hammer one FrameSource
// with overlapping GOPs under heavy eviction pressure; every frame must
// still come back bit-identical to the full decode.
TEST(FrameSourceTest, ConcurrentAccessIsBitIdentical) {
  const codec::CmvFile file = EncodeTestFile(30, 6);  // 5 GOPs
  util::StatusOr<media::Video> full = codec::DecodeVideo(file);
  ASSERT_TRUE(full.ok());

  codec::FrameSource::Options options;
  options.cache_capacity_gops = 2;  // forces eviction races
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, options);
  ASSERT_TRUE(source.ok());
  codec::FrameSource* src = source->get();

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Strided so every thread touches every GOP, in different orders.
      for (int pass = 0; pass < 3; ++pass) {
        for (int i = t; i < file.frame_count(); i += kThreads) {
          const int idx = (pass % 2 == 0) ? i : file.frame_count() - 1 - i;
          util::StatusOr<codec::FrameHandle> frame = src->GetFrame(idx);
          if (!frame.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (!(frame->image() == full->frame(idx))) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const codec::FrameSource::Stats stats = (*source)->stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<int64_t>(3 * file.frame_count()));
  // Re-decodes happen under eviction, but concurrent requesters of one GOP
  // must share a single decode, never duplicate it while inflight.
  EXPECT_GE(stats.decoded_gops, 5);
}

}  // namespace
}  // namespace classminer

#include <gtest/gtest.h>

#include "media/color.h"
#include "media/draw.h"
#include "media/image.h"
#include "media/morphology.h"
#include "media/region.h"
#include "util/rng.h"

namespace classminer::media {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  Image img(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.at(2, 1), (Rgb{10, 20, 30}));
  img.set(2, 1, Rgb{1, 2, 3});
  EXPECT_EQ(img.at(2, 1), (Rgb{1, 2, 3}));
}

TEST(ImageTest, EmptyAndBounds) {
  Image img;
  EXPECT_TRUE(img.empty());
  Image sized(2, 2);
  EXPECT_TRUE(sized.Contains(0, 0));
  EXPECT_TRUE(sized.Contains(1, 1));
  EXPECT_FALSE(sized.Contains(2, 0));
  EXPECT_FALSE(sized.Contains(0, -1));
}

TEST(ImageTest, ResizePreservesUniformContent) {
  Image img(8, 8, Rgb{50, 60, 70});
  const Image smaller = img.Resized(3, 3);
  EXPECT_EQ(smaller.width(), 3);
  for (const Rgb& p : smaller.pixels()) EXPECT_EQ(p, (Rgb{50, 60, 70}));
}

TEST(ColorTest, RgbHsvRoundTripPrimaries) {
  for (const Rgb c : {Rgb{255, 0, 0}, Rgb{0, 255, 0}, Rgb{0, 0, 255},
                      Rgb{255, 255, 0}, Rgb{128, 128, 128}}) {
    const Hsv hsv = RgbToHsv(c);
    const Rgb back = HsvToRgb(hsv);
    EXPECT_NEAR(back.r, c.r, 2);
    EXPECT_NEAR(back.g, c.g, 2);
    EXPECT_NEAR(back.b, c.b, 2);
  }
}

TEST(ColorTest, HueOfPureRedIsZero) {
  const Hsv hsv = RgbToHsv(Rgb{255, 0, 0});
  EXPECT_NEAR(hsv.h, 0.0, 1e-9);
  EXPECT_NEAR(hsv.s, 1.0, 1e-9);
  EXPECT_NEAR(hsv.v, 1.0, 1e-9);
}

TEST(ColorTest, LumaOrdering) {
  EXPECT_GT(Luma(Rgb{255, 255, 255}), Luma(Rgb{128, 128, 128}));
  EXPECT_GT(Luma(Rgb{0, 255, 0}), Luma(Rgb{0, 0, 255}));  // green > blue
}

TEST(ColorTest, GrayishDetection) {
  EXPECT_TRUE(IsGrayish(Rgb{100, 105, 98}));
  EXPECT_FALSE(IsGrayish(Rgb{200, 50, 50}));
}

TEST(DrawTest, FillRectClips) {
  Image img(4, 4);
  FillRect(&img, 2, 2, 10, 10, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(3, 3), (Rgb{255, 0, 0}));
  EXPECT_EQ(img.at(1, 1), (Rgb{0, 0, 0}));
}

TEST(DrawTest, EllipseCoversCenterNotCorner) {
  Image img(21, 21);
  FillEllipse(&img, 10, 10, 6, 6, Rgb{9, 9, 9});
  EXPECT_EQ(img.at(10, 10), (Rgb{9, 9, 9}));
  EXPECT_EQ(img.at(0, 0), (Rgb{0, 0, 0}));
}

TEST(DrawTest, TranslateShiftsContent) {
  Image img(5, 5);
  img.set(2, 2, Rgb{7, 7, 7});
  const Image moved = Translated(img, 1, 0);
  EXPECT_EQ(moved.at(3, 2), (Rgb{7, 7, 7}));
}

TEST(DrawTest, NoiseStaysInRange) {
  Image img(8, 8, Rgb{250, 5, 128});
  util::Rng rng(1);
  AddNoise(&img, 10, &rng);
  for (const Rgb& p : img.pixels()) {
    EXPECT_GE(p.r, 240);  // clamped near top
    EXPECT_LE(p.g, 15);
  }
}

TEST(RegionTest, SingleComponent) {
  GrayImage mask(10, 10);
  for (int y = 2; y <= 5; ++y) {
    for (int x = 3; x <= 6; ++x) mask.set(x, y, 255);
  }
  const std::vector<Region> regions = ConnectedComponents(mask);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].area, 16);
  EXPECT_EQ(regions[0].min_x, 3);
  EXPECT_EQ(regions[0].max_y, 5);
  EXPECT_NEAR(regions[0].Solidity(), 1.0, 1e-12);
  EXPECT_NEAR(regions[0].centroid_x, 4.5, 1e-9);
}

TEST(RegionTest, TwoComponentsSortedByArea) {
  GrayImage mask(10, 10);
  mask.set(0, 0, 255);  // area 1
  for (int x = 5; x < 9; ++x) mask.set(x, 5, 255);  // area 4
  const std::vector<Region> regions = ConnectedComponents(mask);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].area, 4);
  EXPECT_EQ(regions[1].area, 1);
}

TEST(RegionTest, MinAreaFilters) {
  GrayImage mask(10, 10);
  mask.set(0, 0, 255);
  EXPECT_TRUE(ConnectedComponents(mask, 2).empty());
}

TEST(RegionTest, DiagonalIsNotConnected) {
  GrayImage mask(4, 4);
  mask.set(0, 0, 255);
  mask.set(1, 1, 255);
  EXPECT_EQ(ConnectedComponents(mask).size(), 2u);
}

TEST(RegionTest, FilterBySizeKeepsLargeSides) {
  Region small;
  small.min_x = 0; small.max_x = 1; small.min_y = 0; small.max_y = 1;
  Region large;
  large.min_x = 0; large.max_x = 40; large.min_y = 0; large.max_y = 40;
  const std::vector<Region> kept =
      FilterBySize({small, large}, 100, 100, 0.2);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].max_x, 40);
}

TEST(MorphologyTest, OpenRemovesSpeckle) {
  GrayImage mask(9, 9);
  mask.set(4, 4, 255);  // 1-pixel speckle
  const GrayImage opened = Open(mask, 1);
  EXPECT_EQ(opened.CoverageFraction(), 0.0);
}

TEST(MorphologyTest, CloseFillsHole) {
  GrayImage mask(9, 9);
  for (int y = 2; y <= 6; ++y) {
    for (int x = 2; x <= 6; ++x) mask.set(x, y, 255);
  }
  mask.set(4, 4, 0);  // hole
  const GrayImage closed = Close(mask, 1);
  EXPECT_GT(closed.at(4, 4), 0);
}

TEST(MorphologyTest, ErodeDilateAreInverseOrder) {
  GrayImage mask(11, 11);
  for (int y = 3; y <= 7; ++y) {
    for (int x = 3; x <= 7; ++x) mask.set(x, y, 255);
  }
  const GrayImage eroded = Erode(mask, 1);
  EXPECT_GT(eroded.at(5, 5), 0);
  EXPECT_EQ(eroded.at(3, 3), 0);  // boundary eroded
  const GrayImage dilated = Dilate(mask, 1);
  EXPECT_GT(dilated.at(2, 2), 0);  // boundary grown
}

}  // namespace
}  // namespace classminer::media

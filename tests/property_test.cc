// Parameterised property sweeps across modules: invariants that must hold
// for whole families of inputs, not just single examples.

#include <gtest/gtest.h>

#include <cmath>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/classminer.h"
#include "core/metrics.h"
#include "index/hier_index.h"
#include "index/linear_index.h"
#include "media/color.h"
#include "media/draw.h"
#include "structure/content_structure.h"
#include "synth/corpus.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace classminer {
namespace {

// ---------------------------------------------------------------------------
// StSim metric axioms over random frame pairs.

class SimilarityAxioms : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityAxioms, IdentityBoundsSymmetry) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  media::Image a(40, 30);
  media::Image b(40, 30);
  media::FillGradient(&a, media::HsvToRgb({rng.Uniform(0, 360), 0.6, 0.8}),
                      media::HsvToRgb({rng.Uniform(0, 360), 0.5, 0.4}));
  media::FillGradient(&b, media::HsvToRgb({rng.Uniform(0, 360), 0.6, 0.8}),
                      media::HsvToRgb({rng.Uniform(0, 360), 0.5, 0.4}));
  media::AddNoise(&a, rng.UniformInt(0, 12), &rng);
  media::AddNoise(&b, rng.UniformInt(0, 12), &rng);

  const features::ShotFeatures fa = features::ExtractShotFeatures(a);
  const features::ShotFeatures fb = features::ExtractShotFeatures(b);
  EXPECT_NEAR(features::StSim(fa, fa), 1.0, 1e-9);
  EXPECT_NEAR(features::StSim(fb, fb), 1.0, 1e-9);
  const double ab = features::StSim(fa, fb);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0 + 1e-12);
  EXPECT_DOUBLE_EQ(ab, features::StSim(fb, fa));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityAxioms, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Codec: coarser quantisation always shrinks payload; quality degrades
// monotonically (with slack for rounding).

class CodecQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecQualitySweep, RoundTripHoldsAtEveryQuality) {
  const int quality = GetParam();
  util::Rng rng(77);
  media::Video video("q", 12.0);
  media::Image base(48, 32);
  media::FillGradient(&base, media::Rgb{180, 120, 60}, media::Rgb{20, 40, 90});
  for (int i = 0; i < 6; ++i) {
    media::Image f = media::Translated(base, i, 0);
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::EncoderOptions opts;
  opts.quality = quality;
  opts.gop_size = 3;
  const codec::CmvFile file = codec::EncodeVideo(video, opts);
  util::StatusOr<media::Video> decoded = codec::DecodeVideo(file);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->frame_count(), 6);
  // Even the coarsest setting must stay recognisable.
  EXPECT_GT(codec::Psnr(video.frame(2), decoded->frame(2)), 18.0);
  // A same-content serialize/parse round trip is always exact.
  util::StatusOr<codec::CmvFile> parsed = codec::CmvFile::Parse(file.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->frames[1].payload, file.frames[1].payload);
}

INSTANTIATE_TEST_SUITE_P(Qualities, CodecQualitySweep,
                         ::testing::Values(1, 2, 4, 8, 16, 31));

TEST(CodecMonotonicity, PayloadShrinksWithQuantiser) {
  util::Rng rng(78);
  media::Video video("m", 12.0);
  media::Image base(48, 32);
  media::FillGradient(&base, media::Rgb{10, 200, 80}, media::Rgb{60, 20, 120});
  for (int i = 0; i < 4; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 4, &rng);
    video.AppendFrame(std::move(f));
  }
  size_t prev = SIZE_MAX;
  for (int quality : {1, 4, 8, 16, 31}) {
    codec::EncoderOptions opts;
    opts.quality = quality;
    const size_t bytes = codec::EncodeVideo(video, opts).VideoPayloadBytes();
    EXPECT_LE(bytes, prev) << "quality " << quality;
    prev = bytes;
  }
}

// ---------------------------------------------------------------------------
// Structure mining: scene recovery across scripted scene counts.

class SceneCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(SceneCountSweep, RecoversScriptedScenes) {
  const int scenes = GetParam();
  synth::VideoScript script;
  script.name = "sweep";
  script.seed = 900 + static_cast<uint64_t>(scenes);
  for (int i = 0; i < scenes; ++i) {
    synth::SceneScript scene;
    scene.kind = i % 2 == 0 ? synth::SceneKind::kClinicalOperation
                            : synth::SceneKind::kOther;
    scene.topic_id = 50 + i * 3;
    scene.shots = 4;
    script.scenes.push_back(scene);
  }
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  const util::StatusOr<core::MiningResult> r =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(r.ok());
  const core::SceneDetectionScore score = core::ScoreSceneDetection(
      r->structure.shots, core::ScenesAsShotSets(r->structure), g.truth);
  EXPECT_GE(score.precision, 0.6) << "scenes=" << scenes;
  // Detected scene count within 50% of the scripted count.
  EXPECT_NEAR(score.detected_scenes, scenes, scenes * 0.5 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, SceneCountSweep, ::testing::Values(2, 4, 6));

// ---------------------------------------------------------------------------
// Hierarchical index: widening the beam never reduces top-1 quality and
// never reduces work.

class BeamSweep : public ::testing::TestWithParam<int> {};

TEST_P(BeamSweep, WiderBeamMonotone) {
  // Small deterministic database out of one mined video.
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(61));
  util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(mined.ok());
  index::VideoDatabase db;
  db.AddVideo("beam", std::move(mined->structure), std::move(mined->events));
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();

  const int beam = GetParam();
  index::HierarchicalIndex::Options narrow_opts;
  narrow_opts.beam_width = beam;
  index::HierarchicalIndex::Options wide_opts;
  wide_opts.beam_width = beam + 1;
  const index::HierarchicalIndex narrow(&db, &concepts, narrow_opts);
  const index::HierarchicalIndex wide(&db, &concepts, wide_opts);

  for (const index::ShotRef& q : db.AllShots()) {
    index::QueryStats ns, ws;
    const auto nm = narrow.Search(db.Features(q), 1, &ns);
    const auto wm = wide.Search(db.Features(q), 1, &ws);
    ASSERT_FALSE(nm.empty());
    ASSERT_FALSE(wm.empty());
    EXPECT_GE(wm[0].similarity + 1e-9, nm[0].similarity);
    EXPECT_GE(ws.TotalComparisons(), ns.TotalComparisons());
  }
}

INSTANTIATE_TEST_SUITE_P(Beams, BeamSweep, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Otsu / entropy thresholds: both must land between two well-separated
// populations for a range of separations.

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, SplitsBimodalData) {
  const double gap = GetParam();
  util::Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 150; ++i) v.push_back(rng.Uniform(0.0, 0.1));
  for (int i = 0; i < 50; ++i) v.push_back(rng.Uniform(gap, gap + 0.1));
  const double otsu = util::OtsuThreshold(v);
  EXPECT_GT(otsu, 0.1);
  EXPECT_LT(otsu, gap + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gaps, ThresholdSweep,
                         ::testing::Values(0.4, 0.6, 0.8));

TEST(OtsuTest, DegenerateInputs) {
  EXPECT_EQ(util::OtsuThreshold({}), 0.0);
  const std::vector<double> constant{0.3, 0.3, 0.3};
  EXPECT_DOUBLE_EQ(util::OtsuThreshold(constant), 0.3);
}

// ---------------------------------------------------------------------------
// Generator degradations keep the ground truth consistent.

class DegradationSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DegradationSweep, TruthStaysConsistent) {
  synth::VideoScript script = synth::QuickScript(71);
  script.dissolve_prob = std::get<0>(GetParam());
  script.flicker = std::get<1>(GetParam());
  script.exposure = 0.7;
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  // Shots still tile the frame axis exactly.
  int next = 0;
  for (const synth::ShotTruth& s : g.truth.shots) {
    EXPECT_EQ(s.start_frame, next);
    next = s.end_frame + 1;
  }
  EXPECT_EQ(next, g.video.frame_count());
  // Shot detection still finds most boundaries (dissolves tolerated).
  const util::StatusOr<core::MiningResult> r =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(r.ok());
  const core::CutScore score = core::ScoreCuts(
      r->shot_trace.cuts, g.truth.CutPositions(), script.dissolve_frames);
  EXPECT_GE(score.recall, 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    Degradations, DegradationSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5),
                       ::testing::Values(0.0, 0.03)));

// ---------------------------------------------------------------------------
// Blend / brightness helpers.

TEST(BlendTest, EndpointsAndMidpoint) {
  const media::Image a(4, 4, media::Rgb{200, 100, 0});
  const media::Image b(4, 4, media::Rgb{0, 100, 200});
  EXPECT_EQ(media::Blend(a, b, 1.0), a);
  EXPECT_EQ(media::Blend(a, b, 0.0), b);
  const media::Image mid = media::Blend(a, b, 0.5);
  EXPECT_EQ(mid.at(1, 1), (media::Rgb{100, 100, 100}));
}

TEST(BrightnessTest, ScalesAndClamps) {
  media::Image img(2, 2, media::Rgb{100, 200, 50});
  media::ScaleBrightness(&img, 1.5);
  EXPECT_EQ(img.at(0, 0), (media::Rgb{150, 255, 75}));
  media::ScaleBrightness(&img, 0.0);
  EXPECT_EQ(img.at(0, 0), (media::Rgb{0, 0, 0}));
}

}  // namespace
}  // namespace classminer

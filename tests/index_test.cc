#include <gtest/gtest.h>

#include "index/access_control.h"
#include "index/concept.h"
#include "index/database.h"
#include "index/hier_index.h"
#include "index/linear_index.h"
#include "media/color.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::index {
namespace {

shot::Shot MakeShot(int index, double hue, uint64_t seed) {
  util::Rng rng(seed + static_cast<uint64_t>(index));
  media::Image img(48, 36, media::HsvToRgb({hue, 0.7, 0.8}));
  media::AddNoise(&img, 4, &rng);
  shot::Shot s;
  s.index = index;
  s.start_frame = index * 30;
  s.end_frame = index * 30 + 29;
  s.rep_frame = s.start_frame + 9;
  s.features = features::ExtractShotFeatures(img);
  return s;
}

// A video with two scenes (distinct hues), labelled with given events.
structure::ContentStructure TwoSceneStructure(double hue_a, double hue_b,
                                              int shots_per_scene,
                                              uint64_t seed) {
  structure::ContentStructure cs;
  for (int i = 0; i < 2 * shots_per_scene; ++i) {
    cs.shots.push_back(
        MakeShot(i, i < shots_per_scene ? hue_a : hue_b, seed));
  }
  for (int g = 0; g < 2; ++g) {
    structure::Group group;
    group.index = g;
    group.start_shot = g * shots_per_scene;
    group.end_shot = (g + 1) * shots_per_scene - 1;
    structure::ShotCluster cluster;
    for (int s = group.start_shot; s <= group.end_shot; ++s) {
      cluster.shot_indices.push_back(s);
    }
    cluster.rep_shot = group.start_shot;
    group.clusters.push_back(cluster);
    group.rep_shots.push_back(group.start_shot);
    cs.groups.push_back(group);

    structure::Scene scene;
    scene.index = g;
    scene.start_group = g;
    scene.end_group = g;
    scene.rep_group = g;
    cs.scenes.push_back(scene);
  }
  return cs;
}

std::vector<events::EventRecord> TwoEvents(events::EventType a,
                                           events::EventType b) {
  events::EventRecord r0;
  r0.scene_index = 0;
  r0.type = a;
  events::EventRecord r1;
  r1.scene_index = 1;
  r1.type = b;
  return {r0, r1};
}

VideoDatabase MakeDatabase() {
  VideoDatabase db;
  db.AddVideo("v0", TwoSceneStructure(0, 120, 5, 100),
              TwoEvents(events::EventType::kPresentation,
                        events::EventType::kClinicalOperation));
  db.AddVideo("v1", TwoSceneStructure(60, 200, 5, 200),
              TwoEvents(events::EventType::kDialog,
                        events::EventType::kPresentation));
  return db;
}

TEST(ConceptTest, MedicalDefaultStructure) {
  const ConceptHierarchy h = ConceptHierarchy::MedicalDefault();
  EXPECT_GT(h.node_count(), 8);
  const int med = h.FindByPath("medical_education/medicine");
  ASSERT_GE(med, 0);
  EXPECT_EQ(h.node(med).level, ConceptLevel::kSubcluster);
  const int pres = h.FindByPath("medical_education/medicine/presentation");
  ASSERT_GE(pres, 0);
  EXPECT_EQ(h.node(pres).level, ConceptLevel::kScene);
  EXPECT_TRUE(h.IsAncestor(med, pres));
  EXPECT_FALSE(h.IsAncestor(pres, med));
  EXPECT_EQ(h.PathOf(pres), "medical_education/medicine/presentation");
}

TEST(ConceptTest, EventMapping) {
  const ConceptHierarchy h = ConceptHierarchy::MedicalDefault();
  EXPECT_EQ(h.node(h.SceneNodeForEvent(events::EventType::kPresentation)).name,
            "presentation");
  EXPECT_EQ(
      h.node(h.SceneNodeForEvent(events::EventType::kClinicalOperation)).name,
      "clinical_operation");
}

TEST(ConceptTest, FromSpecBuildsTree) {
  util::StatusOr<ConceptHierarchy> h = ConceptHierarchy::FromSpec({
      "education/medicine/presentation:1",
      "education/medicine/dialog",
      "# comment",
      "reports/radiology:3",
  });
  ASSERT_TRUE(h.ok());
  const int pres = h->FindByPath("education/medicine/presentation");
  ASSERT_GE(pres, 0);
  EXPECT_EQ(h->node(pres).security_level, 1);
  EXPECT_EQ(h->node(h->FindByPath("reports/radiology")).security_level, 3);
  EXPECT_EQ(h->FindByPath("education/nothing"), -1);
}

TEST(DatabaseTest, ShotAccounting) {
  const VideoDatabase db = MakeDatabase();
  EXPECT_EQ(db.video_count(), 2);
  EXPECT_EQ(db.TotalShotCount(), 20u);
  EXPECT_EQ(db.AllShots().size(), 20u);
  EXPECT_EQ(db.video(0).EventOfShot(2), events::EventType::kPresentation);
  EXPECT_EQ(db.video(0).EventOfShot(7),
            events::EventType::kClinicalOperation);
  EXPECT_EQ(db.video(0).SceneOfShot(7), 1);
}

TEST(LinearIndexTest, ExactMatchRanksFirst) {
  const VideoDatabase db = MakeDatabase();
  LinearIndex idx(&db);
  const ShotRef target{1, 3};
  QueryStats stats;
  const std::vector<QueryMatch> matches =
      idx.Search(db.Features(target), 5, &stats);
  ASSERT_EQ(matches.size(), 5u);
  EXPECT_EQ(matches[0].ref, target);
  EXPECT_NEAR(matches[0].similarity, 1.0, 1e-9);
  EXPECT_EQ(stats.shot_comparisons, 20u);
}

TEST(LinearIndexTest, ResultsSortedDescending) {
  const VideoDatabase db = MakeDatabase();
  LinearIndex idx(&db);
  const std::vector<QueryMatch> matches =
      idx.Search(db.Features({0, 0}), 20);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].similarity, matches[i].similarity);
  }
}

TEST(HierIndexTest, IndexesEveryShot) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  HierarchicalIndex idx(&db, &concepts);
  EXPECT_EQ(idx.TotalIndexedShots(), db.TotalShotCount());
  EXPECT_GE(idx.cluster_count(), 3u);
}

TEST(HierIndexTest, ExactMatchFoundWithFewerComparisons) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  HierarchicalIndex idx(&db, &concepts);
  const ShotRef target{0, 2};
  QueryStats stats;
  const std::vector<QueryMatch> matches =
      idx.Search(db.Features(target), 3, &stats);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].ref, target);
  EXPECT_NEAR(matches[0].similarity, 1.0, 1e-9);
  // The pruned search must touch far fewer shots than the full scan.
  EXPECT_LT(stats.shot_comparisons, db.TotalShotCount());
}

TEST(HierIndexTest, AgreesWithLinearOnTopResult) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  HierarchicalIndex::Options opts;
  opts.beam_width = 2;
  HierarchicalIndex hier(&db, &concepts, opts);
  LinearIndex linear(&db);
  for (const ShotRef& q : db.AllShots()) {
    const auto lm = linear.Search(db.Features(q), 1);
    const auto hm = hier.Search(db.Features(q), 1);
    ASSERT_FALSE(hm.empty());
    EXPECT_NEAR(hm[0].similarity, lm[0].similarity, 1e-9)
        << "query " << q.video_id << ":" << q.shot_index;
  }
}

TEST(AccessControlTest, ClearanceGatesClinical) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  AccessController ac(&concepts);

  UserCredential student;
  student.clearance = 1;
  UserCredential surgeon;
  surgeon.clearance = 3;

  const ShotRef clinical{0, 7};      // clinical scene (security level 2)
  const ShotRef presentation{0, 1};  // presentation scene (level 0)
  EXPECT_FALSE(ac.CanAccessShot(student, db, clinical));
  EXPECT_TRUE(ac.CanAccessShot(surgeon, db, clinical));
  EXPECT_TRUE(ac.CanAccessShot(student, db, presentation));
}

TEST(AccessControlTest, DenyRuleOverridesClearance) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  AccessController ac(&concepts);
  UserCredential user;
  user.clearance = 5;
  user.denied_nodes.insert(concepts.FindByName("dialog"));
  EXPECT_FALSE(ac.CanAccessShot(user, db, ShotRef{1, 2}));  // dialog scene
  EXPECT_TRUE(ac.CanAccessShot(user, db, ShotRef{0, 1}));
}

TEST(AccessControlTest, AncestorDenialPropagates) {
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  AccessController ac(&concepts);
  UserCredential user;
  user.clearance = 5;
  user.denied_nodes.insert(concepts.FindByName("medicine"));
  EXPECT_FALSE(ac.CanAccessNode(user, concepts.FindByName("presentation")));
}

TEST(AccessControlTest, FilterMatchesDropsForbidden) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  AccessController ac(&concepts);
  LinearIndex idx(&db);
  UserCredential student;
  student.clearance = 1;
  const auto all = idx.Search(db.Features({0, 7}), 20);
  const auto filtered = ac.FilterMatches(student, db, all);
  EXPECT_LT(filtered.size(), all.size());
  for (const QueryMatch& m : filtered) {
    EXPECT_NE(db.video(m.ref.video_id).EventOfShot(m.ref.shot_index),
              events::EventType::kClinicalOperation);
  }
}

// Monotonicity property: higher clearance never sees fewer results.
class ClearanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClearanceSweep, MonotoneAccess) {
  const VideoDatabase db = MakeDatabase();
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  AccessController ac(&concepts);
  LinearIndex idx(&db);
  const auto all = idx.Search(db.Features({0, 0}), 20);

  UserCredential lower;
  lower.clearance = GetParam();
  UserCredential higher;
  higher.clearance = GetParam() + 1;
  EXPECT_LE(ac.FilterMatches(lower, db, all).size(),
            ac.FilterMatches(higher, db, all).size());
}

INSTANTIATE_TEST_SUITE_P(Levels, ClearanceSweep, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace classminer::index

// server::ResultCache under pressure: LRU eviction racing an in-flight
// single-flight lead must neither drop joined waiters nor publish into a
// dead entry. The in-flight ledger and the LRU are separate structures; the
// tests pin the contract at their boundary.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/result_cache.h"

namespace classminer::server {
namespace {

CachedResult MakeResult(const std::string& body) {
  CachedResult result;
  result.code = util::StatusCode::kOk;
  result.body = body;
  return result;
}

TEST(ResultCacheTest, EvictionPressureNeverDropsJoinedWaiters) {
  // Room for exactly one stored entry: every insertion evicts the previous
  // one, so the LRU is churning the whole time the lead is in flight.
  ResultCache::Options options;
  options.max_entries = 1;
  options.max_bytes = 1u << 20;
  ResultCache cache(options);

  CachedResult out;
  ASSERT_EQ(cache.JoinOrLead("lead", &out, nullptr),
            ResultCache::Admission::kLead);

  // Waiters attach to the in-flight lead...
  constexpr int kWaiters = 8;
  std::atomic<int> woken{0};
  std::atomic<int> redispatched{0};
  for (int i = 0; i < kWaiters; ++i) {
    const ResultCache::Admission admission =
        cache.JoinOrLead("lead", &out, [&](const CachedResult* result) {
          if (result != nullptr && result->body == "the answer") {
            ++woken;
          } else {
            ++redispatched;
          }
        });
    ASSERT_EQ(admission, ResultCache::Admission::kJoined);
  }

  // ...while eviction churn runs the LRU dry repeatedly. None of this may
  // disturb the in-flight entry or its waiters.
  for (int i = 0; i < 64; ++i) {
    const std::string key = "churn" + std::to_string(i);
    ASSERT_EQ(cache.JoinOrLead(key, &out, nullptr),
              ResultCache::Admission::kLead);
    cache.Complete(key, MakeResult("filler"), /*cacheable=*/true);
  }

  cache.Complete("lead", MakeResult("the answer"), /*cacheable=*/true);
  EXPECT_EQ(woken.load(), kWaiters);
  EXPECT_EQ(redispatched.load(), 0);

  // The completed lead is the most recent entry; it must answer hits even
  // though everything before it was evicted.
  CachedResult cached;
  EXPECT_EQ(cache.JoinOrLead("lead", &cached, nullptr),
            ResultCache::Admission::kHit);
  EXPECT_EQ(cached.body, "the answer");
  EXPECT_GE(cache.stats().evictions, 63u);
}

TEST(ResultCacheTest, CompletePublishesToWaitersEvenWhenEntryCannotStore) {
  // An entry larger than the whole cache can never be stored — but the
  // joined waiters still receive the leader's bytes; only LATER askers
  // miss. Publishing must not depend on a live LRU slot.
  ResultCache::Options options;
  options.max_entries = 4;
  options.max_bytes = 8;  // any real body overflows instantly
  ResultCache cache(options);

  CachedResult out;
  ASSERT_EQ(cache.JoinOrLead("big", &out, nullptr),
            ResultCache::Admission::kLead);
  std::string delivered;
  ASSERT_EQ(cache.JoinOrLead("big", &out,
                             [&](const CachedResult* result) {
                               ASSERT_NE(result, nullptr);
                               delivered = result->body;
                             }),
            ResultCache::Admission::kJoined);

  cache.Complete("big", MakeResult("a body far larger than eight bytes"),
                 /*cacheable=*/true);
  EXPECT_EQ(delivered, "a body far larger than eight bytes");

  // The oversized entry did not survive as a stored entry (it was evicted
  // immediately), so the next asker leads again rather than hitting.
  EXPECT_EQ(cache.JoinOrLead("big", &out, nullptr),
            ResultCache::Admission::kLead);
  cache.Complete("big", MakeResult("x"), /*cacheable=*/true);
}

TEST(ResultCacheTest, ConcurrentChurnAgainstInFlightLeadIsSafe) {
  // Threaded version of the race: one thread completes the lead while
  // others churn keys through the LRU and join the lead. Run under TSAN in
  // tier1, this pins the locking around the inflight/LRU boundary.
  ResultCache::Options options;
  options.max_entries = 2;
  options.max_bytes = 1u << 10;
  ResultCache cache(options);

  CachedResult out;
  ASSERT_EQ(cache.JoinOrLead("hot", &out, nullptr),
            ResultCache::Admission::kLead);

  std::atomic<int> delivered{0};
  std::atomic<int> redispatch{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        const std::string key = "t" + std::to_string(t) + "k" +
                                std::to_string(i);
        CachedResult local;
        if (cache.JoinOrLead(key, &local, nullptr) ==
            ResultCache::Admission::kLead) {
          cache.Complete(key, MakeResult("spam"), /*cacheable=*/true);
        }
        // Half the iterations also poke the in-flight lead.
        if (i % 2 == 0) {
          const ResultCache::Admission a = cache.JoinOrLead(
              key + "join:hot", &local, nullptr);
          (void)a;
          if (a == ResultCache::Admission::kLead) {
            cache.Complete(key + "join:hot", MakeResult("x"), true);
          }
          CachedResult hot;
          const ResultCache::Admission h = cache.JoinOrLead(
              "hot", &hot, [&](const CachedResult* result) {
                if (result != nullptr) {
                  ++delivered;
                } else {
                  ++redispatch;
                }
              });
          if (h == ResultCache::Admission::kHit) ++delivered;
        }
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.Complete("hot", MakeResult("hot answer"), /*cacheable=*/true);
  for (std::thread& t : threads) t.join();

  // Every probe of "hot" resolved exactly one way; nobody was dropped.
  EXPECT_EQ(redispatch.load(), 0);
  EXPECT_GT(delivered.load(), 0);
}

}  // namespace
}  // namespace classminer::server

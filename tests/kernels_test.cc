// Dispatch-layer and kernel-equivalence tests: every vector path must
// produce results exactly equal (bit-identical for doubles) to the scalar
// reference, at every dispatch level this host can execute, on aligned and
// unaligned data, even and odd sizes.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "codec/dct.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/motion.h"
#include "core/classminer.h"
#include "core/cmv_pipeline.h"
#include "features/histogram.h"
#include "media/image.h"
#include "synth/corpus.h"
#include "synth/video_generator.h"
#include "util/cpu.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace classminer {
namespace {

// Restores the process-wide dispatch pin on scope exit so a failing test
// cannot leak a pinned level into later tests.
class ScopedDispatchLevel {
 public:
  explicit ScopedDispatchLevel(util::DispatchLevel level) {
    pinned_ = util::SetDispatchLevelForTest(level);
  }
  ~ScopedDispatchLevel() { util::ClearDispatchLevelForTest(); }
  bool pinned() const { return pinned_; }

 private:
  bool pinned_ = false;
};

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

// ---------------------------------------------------------------------------
// Dispatch policy.

TEST(CpuDispatchTest, ResolveLevelFollowsFeatureFlags) {
  util::CpuFeatures f;
  EXPECT_EQ(util::internal::ResolveDispatchLevel(f, false),
            util::DispatchLevel::kScalar);
  f.sse42 = true;  // PCLMUL missing: stays scalar
  EXPECT_EQ(util::internal::ResolveDispatchLevel(f, false),
            util::DispatchLevel::kScalar);
  f.pclmul = true;
  EXPECT_EQ(util::internal::ResolveDispatchLevel(f, false),
            util::DispatchLevel::kSse42);
  f.avx2 = true;
  EXPECT_EQ(util::internal::ResolveDispatchLevel(f, false),
            util::DispatchLevel::kAvx2);
  // The env knob wins over any hardware.
  EXPECT_EQ(util::internal::ResolveDispatchLevel(f, true),
            util::DispatchLevel::kScalar);

  util::CpuFeatures arm;
  arm.neon = true;
  EXPECT_EQ(util::internal::ResolveDispatchLevel(arm, false),
            util::DispatchLevel::kScalar);
  arm.arm_crc32 = true;
  EXPECT_EQ(util::internal::ResolveDispatchLevel(arm, false),
            util::DispatchLevel::kNeon);
}

TEST(CpuDispatchTest, SupportedLevelsStartAtScalarAndAscend) {
  const std::vector<util::DispatchLevel> levels =
      util::SupportedDispatchLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), util::DispatchLevel::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
}

TEST(CpuDispatchTest, PinningChangesActiveLevelAndBumpsGeneration) {
  const uint64_t gen_before = util::DispatchGeneration();
  {
    ScopedDispatchLevel pin(util::DispatchLevel::kScalar);
    ASSERT_TRUE(pin.pinned());
    EXPECT_EQ(util::ActiveDispatchLevel(), util::DispatchLevel::kScalar);
    EXPECT_GT(util::DispatchGeneration(), gen_before);
  }
  // Every supported level can actually be pinned.
  for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
    ScopedDispatchLevel pin(level);
    EXPECT_TRUE(pin.pinned());
    EXPECT_EQ(util::ActiveDispatchLevel(), level);
  }
}

TEST(CpuDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(util::DispatchLevelName(util::DispatchLevel::kScalar),
               "scalar");
  EXPECT_STREQ(util::DispatchLevelName(util::DispatchLevel::kSse42),
               "sse4.2");
  EXPECT_STREQ(util::DispatchLevelName(util::DispatchLevel::kAvx2), "avx2");
  EXPECT_STREQ(util::DispatchLevelName(util::DispatchLevel::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// CRC-32.

std::vector<uint8_t> RandomBytes(size_t n, util::Rng* rng) {
  std::vector<uint8_t> bytes(n);
  for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng->UniformInt(0, 255));
  return bytes;
}

TEST(Crc32KernelTest, AllDispatchLevelsMatchTheReference) {
  util::Rng rng(0xC0FFEE);
  const size_t sizes[] = {0,  1,  2,  3,   7,   8,    9,    15,   16,  17,
                          31, 63, 64, 65,  100, 127,  128,  255,  256, 1000,
                          4096, 65536};
  for (size_t n : sizes) {
    const std::vector<uint8_t> data = RandomBytes(n, &rng);
    const uint32_t want =
        util::internal::Crc32Reference(data.data(), data.size(), 0);
    // Internal kernels agree regardless of the dispatch level.
    EXPECT_EQ(util::internal::Crc32Slice8(data.data(), data.size(), 0), want)
        << "slice8 size " << n;
    if (util::internal::Crc32AccelAvailable()) {
      EXPECT_EQ(util::internal::Crc32Accel(data.data(), data.size(), 0), want)
          << "accel size " << n;
    }
    // The public entry point agrees at every pinned level (this exercises
    // the cached-function-pointer invalidation path too).
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      ScopedDispatchLevel pin(level);
      ASSERT_TRUE(pin.pinned());
      EXPECT_EQ(util::Crc32(data.data(), data.size()), want)
          << "level " << util::DispatchLevelName(level) << " size " << n;
      EXPECT_EQ(util::Crc32(data), want)
          << "vector overload, level " << util::DispatchLevelName(level);
    }
  }
}

TEST(Crc32KernelTest, UnalignedSpansMatchTheReference) {
  util::Rng rng(7);
  const std::vector<uint8_t> data = RandomBytes(4099, &rng);
  for (size_t offset : {1u, 2u, 3u, 5u, 7u}) {
    const uint8_t* p = data.data() + offset;
    const size_t n = data.size() - offset;
    const uint32_t want = util::internal::Crc32Reference(p, n, 0);
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      ScopedDispatchLevel pin(level);
      EXPECT_EQ(util::Crc32(p, n), want)
          << "offset " << offset << " level "
          << util::DispatchLevelName(level);
    }
  }
}

TEST(Crc32KernelTest, ChainingSplitsAnywhere) {
  util::Rng rng(99);
  const std::vector<uint8_t> data = RandomBytes(777, &rng);
  const uint32_t whole = util::Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{65}, size_t{512}, size_t{776}, size_t{777}}) {
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      ScopedDispatchLevel pin(level);
      const uint32_t head = util::Crc32(data.data(), split);
      const uint32_t chained =
          util::Crc32(data.data() + split, data.size() - split, head);
      EXPECT_EQ(chained, whole) << "split " << split << " level "
                                << util::DispatchLevelName(level);
    }
  }
}

TEST(Crc32KernelTest, KnownVector) {
  // CRC-32("123456789") — the classic IEEE check value.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
    ScopedDispatchLevel pin(level);
    EXPECT_EQ(util::Crc32(digits, sizeof(digits)), 0xCBF43926u);
  }
}

// ---------------------------------------------------------------------------
// DCT.

codec::Block RandomBlock(util::Rng* rng, double lo, double hi) {
  codec::Block b;
  for (double& v : b) v = rng->Uniform(lo, hi);
  return b;
}

TEST(DctKernelTest, AccelMatchesScalarBitForBit) {
  if (!codec::internal::DctAccelAvailable()) {
    GTEST_SKIP() << "no DCT accel kernel on this architecture";
  }
  util::Rng rng(0xD0);
  for (int iter = 0; iter < 200; ++iter) {
    const codec::Block spatial = RandomBlock(&rng, -255.0, 255.0);
    const codec::Block want_f = codec::internal::ForwardDctScalar(spatial);
    const codec::Block got_f = codec::internal::ForwardDctAccel(spatial);
    for (size_t i = 0; i < spatial.size(); ++i) {
      ASSERT_EQ(Bits(got_f[i]), Bits(want_f[i])) << "fwd coeff " << i;
    }
    const codec::Block want_i = codec::internal::InverseDctScalar(want_f);
    const codec::Block got_i = codec::internal::InverseDctAccel(want_f);
    for (size_t i = 0; i < spatial.size(); ++i) {
      ASSERT_EQ(Bits(got_i[i]), Bits(want_i[i])) << "inv coeff " << i;
    }
  }
}

TEST(DctKernelTest, PublicEntryPointsAgreeAcrossLevels) {
  util::Rng rng(0xD1);
  const codec::Block spatial = RandomBlock(&rng, -128.0, 127.0);
  codec::Block want_f, want_i;
  {
    ScopedDispatchLevel pin(util::DispatchLevel::kScalar);
    want_f = codec::ForwardDct(spatial);
    want_i = codec::InverseDct(want_f);
  }
  for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
    ScopedDispatchLevel pin(level);
    const codec::Block got_f = codec::ForwardDct(spatial);
    const codec::Block got_i = codec::InverseDct(want_f);
    for (size_t i = 0; i < spatial.size(); ++i) {
      ASSERT_EQ(Bits(got_f[i]), Bits(want_f[i]))
          << "fwd " << i << " level " << util::DispatchLevelName(level);
      ASSERT_EQ(Bits(got_i[i]), Bits(want_i[i]))
          << "inv " << i << " level " << util::DispatchLevelName(level);
    }
  }
}

// ---------------------------------------------------------------------------
// Histogram.

media::Image RandomImage(int w, int h, util::Rng* rng) {
  media::Image img(w, h);
  for (media::Rgb& p : img.pixels()) {
    // Mix fully random pixels with grey / saturated ones so the delta==0
    // and mx==r==g branch-priority paths all get exercised.
    const int kind = rng->UniformInt(0, 9);
    if (kind == 0) {
      const uint8_t g = static_cast<uint8_t>(rng->UniformInt(0, 255));
      p = media::Rgb{g, g, g};
    } else if (kind == 1) {
      p = media::Rgb{static_cast<uint8_t>(rng->UniformInt(0, 1) * 255),
                     static_cast<uint8_t>(rng->UniformInt(0, 1) * 255),
                     static_cast<uint8_t>(rng->UniformInt(0, 1) * 255)};
    } else {
      p = media::Rgb{static_cast<uint8_t>(rng->UniformInt(0, 255)),
                     static_cast<uint8_t>(rng->UniformInt(0, 255)),
                     static_cast<uint8_t>(rng->UniformInt(0, 255))};
    }
  }
  return img;
}

TEST(HistogramKernelTest, BatchBinsMatchPerPixelScalar) {
  if (!features::internal::HistogramAccelAvailable()) {
    GTEST_SKIP() << "no histogram accel kernel on this architecture";
  }
  util::Rng rng(0x415);
  // Odd pixel counts force a ragged vector tail; offset 1 starts the batch
  // on an unaligned Rgb (3-byte stride already defeats natural alignment).
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{64}, size_t{257}, size_t{1001}}) {
    std::vector<media::Rgb> pixels(n + 1);
    for (media::Rgb& p : pixels) {
      p = media::Rgb{static_cast<uint8_t>(rng.UniformInt(0, 255)),
                     static_cast<uint8_t>(rng.UniformInt(0, 255)),
                     static_cast<uint8_t>(rng.UniformInt(0, 255))};
    }
    for (size_t offset : {size_t{0}, size_t{1}}) {
      std::vector<int32_t> want(n), got(n);
      features::internal::HistogramBinRangeScalar(pixels.data() + offset, n,
                                                  want.data());
      features::internal::HistogramBinRangeAccel(pixels.data() + offset, n,
                                                 got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "n " << n << " offset " << offset
                                   << " pixel " << i;
        ASSERT_EQ(want[i],
                  features::HistogramBin(pixels[offset + i]));
      }
    }
  }
}

TEST(HistogramKernelTest, AllRgbEdgeValuesBinIdentically) {
  if (!features::internal::HistogramAccelAvailable()) {
    GTEST_SKIP() << "no histogram accel kernel on this architecture";
  }
  // Every combination of {0, 1, 127, 128, 254, 255} per channel: covers the
  // grey path, single-channel maxima and ties between channels.
  const uint8_t vals[] = {0, 1, 127, 128, 254, 255};
  std::vector<media::Rgb> pixels;
  for (uint8_t r : vals) {
    for (uint8_t g : vals) {
      for (uint8_t b : vals) pixels.push_back(media::Rgb{r, g, b});
    }
  }
  std::vector<int32_t> want(pixels.size()), got(pixels.size());
  features::internal::HistogramBinRangeScalar(pixels.data(), pixels.size(),
                                              want.data());
  features::internal::HistogramBinRangeAccel(pixels.data(), pixels.size(),
                                             got.data());
  EXPECT_EQ(want, got);
}

TEST(HistogramKernelTest, ComputeColorHistogramIsBitIdenticalAcrossLevels) {
  util::Rng rng(0x416);
  for (auto [w, h] : {std::pair{17, 13}, {1, 1}, {3, 7}, {32, 32}, {33, 9}}) {
    const media::Image img = RandomImage(w, h, &rng);
    features::ColorHistogram want;
    {
      ScopedDispatchLevel pin(util::DispatchLevel::kScalar);
      want = features::ComputeColorHistogram(img);
    }
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      ScopedDispatchLevel pin(level);
      const features::ColorHistogram got = features::ComputeColorHistogram(img);
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(want[i]))
            << w << "x" << h << " bin " << i << " level "
            << util::DispatchLevelName(level);
      }
    }
  }
}

TEST(HistogramKernelTest, ReductionsAreBitIdenticalAcrossLevels) {
  util::Rng rng(0x417);
  // Sizes around the 4-lane boundary plus full histogram size; unaligned
  // subspans shift the loads off 32-byte boundaries.
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                   size_t{5}, size_t{6}, size_t{7}, size_t{8}, size_t{9},
                   size_t{255}, size_t{256}}) {
    std::vector<double> a(n + 1), b(n + 1);
    for (double& v : a) v = rng.Uniform();
    for (double& v : b) v = rng.Uniform();
    for (size_t offset : {size_t{0}, size_t{1}}) {
      const std::span<const double> sa(a.data() + offset, n);
      const std::span<const double> sb(b.data() + offset, n);
      const double want_int =
          features::internal::HistogramIntersectionScalar(sa, sb);
      const double want_l1 =
          features::internal::HistogramL1DistanceScalar(sa, sb);
      if (features::internal::HistogramAccelAvailable()) {
        EXPECT_EQ(Bits(features::internal::HistogramIntersectionAccel(sa, sb)),
                  Bits(want_int))
            << "n " << n << " offset " << offset;
        EXPECT_EQ(Bits(features::internal::HistogramL1DistanceAccel(sa, sb)),
                  Bits(want_l1))
            << "n " << n << " offset " << offset;
      }
      for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
        ScopedDispatchLevel pin(level);
        EXPECT_EQ(Bits(features::HistogramIntersection(sa, sb)),
                  Bits(want_int))
            << "n " << n << " level " << util::DispatchLevelName(level);
        EXPECT_EQ(Bits(features::HistogramL1Distance(sa, sb)), Bits(want_l1))
            << "n " << n << " level " << util::DispatchLevelName(level);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SAD.

codec::Plane RandomPlane(int w, int h, int lo, int hi, util::Rng* rng) {
  codec::Plane p = codec::Plane::Make(w, h);
  for (int16_t& s : p.samples) {
    s = static_cast<int16_t>(rng->UniformInt(lo, hi));
  }
  return p;
}

TEST(SadKernelTest, InteriorBlocksMatchScalarExactly) {
  if (!codec::internal::SadAccelAvailable()) {
    GTEST_SKIP() << "no SAD accel kernel on this architecture";
  }
  util::Rng rng(0x5AD);
  // Residual-range samples exercise the int32 widening (an int16 subtract
  // would wrap on e.g. 32000 - (-32000)).
  const codec::Plane cur = RandomPlane(64, 48, -32000, 32000, &rng);
  const codec::Plane ref = RandomPlane(64, 48, -32000, 32000, &rng);
  for (int iter = 0; iter < 200; ++iter) {
    const int mx = rng.UniformInt(0, 48);
    const int my = rng.UniformInt(0, 32);
    const int dx = rng.UniformInt(-mx, 48 - mx);
    const int dy = rng.UniformInt(-my, 32 - my);
    const int64_t want =
        codec::internal::MacroblockSadScalar(cur, ref, mx, my, dx, dy);
    const int64_t got =
        codec::internal::MacroblockSadAccel(cur, ref, mx, my, dx, dy);
    ASSERT_EQ(got, want) << "mx " << mx << " my " << my << " dx " << dx
                         << " dy " << dy;
  }
}

TEST(SadKernelTest, PublicEntryPointAgreesAcrossLevelsIncludingEdges) {
  util::Rng rng(0x5AE);
  // Odd dimensions put macroblocks across the right/bottom edges, forcing
  // the scalar fallback path; interior positions take the vector path.
  const codec::Plane cur = RandomPlane(53, 37, 0, 255, &rng);
  const codec::Plane ref = RandomPlane(53, 37, 0, 255, &rng);
  for (int iter = 0; iter < 300; ++iter) {
    const int mx = rng.UniformInt(0, 52);
    const int my = rng.UniformInt(0, 36);
    const int dx = rng.UniformInt(-20, 20);
    const int dy = rng.UniformInt(-20, 20);
    int64_t want = 0;
    {
      ScopedDispatchLevel pin(util::DispatchLevel::kScalar);
      want = codec::MacroblockSad(cur, ref, mx, my, dx, dy);
    }
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      ScopedDispatchLevel pin(level);
      ASSERT_EQ(codec::MacroblockSad(cur, ref, mx, my, dx, dy), want)
          << "mx " << mx << " my " << my << " dx " << dx << " dy " << dy
          << " level " << util::DispatchLevelName(level);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: mining output must not depend on the dispatch level.

core::MiningResult MineAtLevel(const codec::CmvFile& file,
                               util::DispatchLevel level, int threads) {
  ScopedDispatchLevel pin(level);
  core::MiningOptions options;
  options.thread_count = threads;
  util::StatusOr<core::MiningResult> result =
      core::MineCmvFileFast(file, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(KernelEndToEndTest, MiningOutputIsBitIdenticalAcrossDispatchLevels) {
  const synth::GeneratedVideo generated =
      synth::GenerateVideo(synth::QuickScript(17));
  const codec::CmvFile file = core::PackGeneratedVideo(generated);

  for (int threads : {1, 2}) {
    const core::MiningResult want =
        MineAtLevel(file, util::DispatchLevel::kScalar, threads);
    for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
      const core::MiningResult got = MineAtLevel(file, level, threads);
      // The frame-difference trace is the rawest double-valued output the
      // kernels touch; require bit equality, not tolerance.
      ASSERT_EQ(got.shot_trace.differences.size(),
                want.shot_trace.differences.size());
      for (size_t i = 0; i < want.shot_trace.differences.size(); ++i) {
        ASSERT_EQ(Bits(got.shot_trace.differences[i]),
                  Bits(want.shot_trace.differences[i]))
            << "diff " << i << " level " << util::DispatchLevelName(level)
            << " threads " << threads;
      }
      EXPECT_EQ(got.shot_trace.cuts, want.shot_trace.cuts);
      ASSERT_EQ(got.structure.shots.size(), want.structure.shots.size());
      for (size_t i = 0; i < want.structure.shots.size(); ++i) {
        EXPECT_EQ(got.structure.shots[i].start_frame,
                  want.structure.shots[i].start_frame);
        EXPECT_EQ(got.structure.shots[i].end_frame,
                  want.structure.shots[i].end_frame);
      }
      EXPECT_EQ(got.structure.scenes.size(), want.structure.scenes.size());
      EXPECT_EQ(got.events.size(), want.events.size());
    }
  }
}

TEST(KernelEndToEndTest, FullDecodeIsIdenticalAcrossDispatchLevels) {
  const synth::GeneratedVideo generated =
      synth::GenerateVideo(synth::QuickScript(5));
  const codec::CmvFile file = core::PackGeneratedVideo(generated);

  util::StatusOr<media::Video> want = [&] {
    ScopedDispatchLevel pin(util::DispatchLevel::kScalar);
    return codec::DecodeVideo(file);
  }();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (util::DispatchLevel level : util::SupportedDispatchLevels()) {
    ScopedDispatchLevel pin(level);
    util::StatusOr<media::Video> got = codec::DecodeVideo(file);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->frame_count(), want->frame_count());
    for (int i = 0; i < want->frame_count(); ++i) {
      ASSERT_TRUE(got->frame(i) == want->frame(i))
          << "frame " << i << " level " << util::DispatchLevelName(level);
    }
  }
}

}  // namespace
}  // namespace classminer

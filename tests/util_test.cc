#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "util/fft.h"
#include "util/mathutil.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace classminer::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(MathTest, MeanVarianceStdDev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
}

TEST(MathTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(FastEntropyThreshold({}), 0.0);
}

TEST(MathTest, EntropyOfUniformIsLogN) {
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(Entropy(w), std::log(4.0), 1e-12);
}

TEST(MathTest, EntropyIgnoresZeros) {
  const std::vector<double> w{0.5, 0.5, 0.0};
  EXPECT_NEAR(Entropy(w), std::log(2.0), 1e-12);
}

TEST(MathTest, FastEntropyThresholdSeparatesBimodal) {
  // Two well-separated populations: threshold must land between them.
  std::vector<double> v;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) v.push_back(rng.Uniform(0.0, 0.1));
  for (int i = 0; i < 40; ++i) v.push_back(rng.Uniform(0.8, 1.0));
  const double t = FastEntropyThreshold(v);
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 0.8);
}

TEST(MathTest, FastEntropyThresholdConstantInput) {
  const std::vector<double> v{0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(FastEntropyThreshold(v), 0.5);
}

TEST(MathTest, PercentileNearestRank) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(MatrixTest, IdentityMultiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const Matrix i = Matrix::Identity(2);
  EXPECT_EQ(a.Multiply(i), a);
  EXPECT_EQ(i.Multiply(a), a);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a.at(r, c) = static_cast<double>(r * 3 + c);
  }
  EXPECT_EQ(a.Transpose().Transpose(), a);
}

TEST(MatrixTest, CovarianceOfKnownData) {
  // Two variables, perfectly correlated.
  Matrix samples(3, 2);
  samples.at(0, 0) = 1.0; samples.at(0, 1) = 2.0;
  samples.at(1, 0) = 2.0; samples.at(1, 1) = 4.0;
  samples.at(2, 0) = 3.0; samples.at(2, 1) = 6.0;
  const Matrix cov = Covariance(samples);
  EXPECT_NEAR(cov.at(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov.at(1, 1), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov.at(0, 1), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov.at(0, 1), cov.at(1, 0), 1e-12);
}

TEST(MatrixTest, CholeskyReconstructs) {
  Matrix a(2, 2);
  a.at(0, 0) = 4.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 3.0;
  StatusOr<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  const Matrix rec = l->Multiply(l->Transpose());
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_NEAR(rec.at(r, c), a.at(r, c), 1e-12);
  }
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 5.0;
  a.at(1, 0) = 5.0; a.at(1, 1) = 1.0;
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(MatrixTest, LogDetOfDiagonal) {
  Matrix a(3, 3);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 3.0;
  a.at(2, 2) = 4.0;
  EXPECT_NEAR(LogDetPsd(a), std::log(24.0), 1e-9);
}

TEST(MatrixTest, LogDetRegularisesSingular) {
  Matrix a(2, 2);  // rank 1
  a.at(0, 0) = 1.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 1.0;
  const double ld = LogDetPsd(a);
  EXPECT_TRUE(std::isfinite(ld));
  EXPECT_LT(ld, 0.0);  // tiny determinant
}

TEST(FftTest, InverseRecoversSignal) {
  Rng rng(7);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> orig(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.Gaussian(), rng.Gaussian()};
    orig[i] = data[i];
  }
  Fft(&data);
  Fft(&data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(FftTest, PureToneConcentratesEnergy) {
  const size_t n = 256;
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = std::sin(2.0 * M_PI * 16.0 * i / n);
  }
  const std::vector<double> mags = MagnitudeSpectrum(signal);
  size_t peak = 0;
  for (size_t i = 1; i < mags.size(); ++i) {
    if (mags[i] > mags[peak]) peak = i;
  }
  EXPECT_EQ(peak, 16u);
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(SerialTest, RoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-77);
  w.PutF64(3.14159);
  w.PutString("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetI32(), -77);
  EXPECT_DOUBLE_EQ(*r.GetF64(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerialTest, ReadPastEndIsDataLoss) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.GetU8().ok());
  StatusOr<uint32_t> v = r.GetU32();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
}

TEST(SerialTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/serial_test.bin";
  const std::vector<uint8_t> bytes{1, 2, 3, 250};
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  StatusOr<std::vector<uint8_t>> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);
}

TEST(SerialTest, MissingFileIsNotFound) {
  StatusOr<std::vector<uint8_t>> read = ReadFile("/nonexistent/path/x.bin");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(SerialTest, CheckU32CountGuardsNarrowing) {
  // Everything a u32 length prefix can hold passes...
  EXPECT_TRUE(CheckU32Count(0, "shot").ok());
  EXPECT_TRUE(CheckU32Count(0xffffffffull, "shot").ok());
  // ...and the first value a bare static_cast<uint32_t> would silently
  // truncate (to 0) is refused before any byte is written.
  const Status overflow = CheckU32Count(0x100000000ull, "videos[3] shot");
  EXPECT_EQ(overflow.code(), StatusCode::kInvalidArgument);
  // The message names the offending field so the caller can find it.
  EXPECT_NE(overflow.message().find("videos[3] shot"), std::string::npos);
  EXPECT_FALSE(CheckU32Count(SIZE_MAX, "frame").ok());
}

}  // namespace
}  // namespace classminer::util

// Fault-injection plumbing: FailPoint trigger specs, bounded retry with
// deterministic backoff, the retrying file I/O built on both, StatusSink
// suppressed-error accounting, and the FrameSource sticky-error contract
// (transient failures must not poison the source).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/container.h"
#include "codec/encoder.h"
#include "codec/frame_source.h"
#include "media/draw.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace classminer {
namespace {

using util::FailPoint;
using util::Status;
using util::StatusCode;

// Every test disarms globally so suites cannot leak armed sites into each
// other regardless of pass/fail order.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoint::DisarmAll(); }
  void TearDown() override { FailPoint::DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteIsOk) {
  EXPECT_FALSE(FailPoint::AnyArmed());
  EXPECT_TRUE(FailPoint::Check("nobody.armed.this").ok());
  EXPECT_EQ(FailPoint::CheckCount("nobody.armed.this"), 0);
  EXPECT_EQ(FailPoint::FailureCount("nobody.armed.this"), 0);
}

TEST_F(FailPointTest, KnownSitesCatalogueIsSortedUniqueAndComplete) {
  const std::vector<std::string> sites = FailPoint::KnownSites();
  ASSERT_FALSE(sites.empty());
  // Sorted and duplicate-free, so chaos rigs can diff catalogues between
  // builds and binary-search for a site.
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
  // Spot-check the long-standing sites and the sharded-database tier's
  // append/compaction/open sites.
  for (const char* expected :
       {"serial.read_file", "serial.atomic_write.rename", "index.persist.save",
        "index.shard.append.write", "index.shard.append.fsync",
        "index.shard.compact.write", "index.shard.compact.fsync",
        "index.shard.compact.rename", "index.shard.compact.manifest",
        "index.shard.open", "server.wire.send.torn"}) {
    EXPECT_TRUE(std::binary_search(sites.begin(), sites.end(),
                                   std::string(expected)))
        << expected << " missing from FailPoint::KnownSites()";
  }
}

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  FailPoint::Arm("test.site", FailPoint::Spec::Once(StatusCode::kDataLoss));
  EXPECT_TRUE(FailPoint::AnyArmed());
  const Status first = FailPoint::Check("test.site");
  EXPECT_EQ(first.code(), StatusCode::kDataLoss);
  // The injected message names the site so logs are traceable.
  EXPECT_NE(first.message().find("test.site"), std::string::npos);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FailPoint::Check("test.site").ok());
  }
  EXPECT_EQ(FailPoint::CheckCount("test.site"), 6);
  EXPECT_EQ(FailPoint::FailureCount("test.site"), 1);
}

TEST_F(FailPointTest, AlwaysFiresEveryCheck) {
  FailPoint::Arm("test.site", FailPoint::Spec::Always());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(FailPoint::Check("test.site").code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(FailPoint::FailureCount("test.site"), 4);
}

TEST_F(FailPointTest, EveryNFiresOnMultiplesOfN) {
  FailPoint::Arm("test.site", FailPoint::Spec::EveryN(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!FailPoint::Check("test.site").ok());
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FailPoint::FailureCount("test.site"), 3);
}

TEST_F(FailPointTest, MaxFailuresBoundsTotalTriggers) {
  FailPoint::Spec spec = FailPoint::Spec::EveryN(2);
  spec.max_failures = 2;
  FailPoint::Arm("test.site", spec);
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    if (!FailPoint::Check("test.site").ok()) ++failures;
  }
  EXPECT_EQ(failures, 2);
}

TEST_F(FailPointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FailPoint::Arm("test.site",
                   FailPoint::Spec::WithProbability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FailPoint::Check("test.site").ok());
    }
    return fired;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);          // same seed, same firing pattern
  EXPECT_NE(a, c);          // a different seed decorrelates
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 10);     // p=0.5 over 64 draws: loose deterministic bounds
  EXPECT_LT(fired, 54);
}

TEST_F(FailPointTest, RearmResetsCounters) {
  FailPoint::Arm("test.site", FailPoint::Spec::Once());
  EXPECT_FALSE(FailPoint::Check("test.site").ok());
  FailPoint::Arm("test.site", FailPoint::Spec::Once());
  EXPECT_FALSE(FailPoint::Check("test.site").ok());  // fires again after re-arm
  EXPECT_EQ(FailPoint::CheckCount("test.site"), 1);
  EXPECT_EQ(FailPoint::FailureCount("test.site"), 1);
}

TEST_F(FailPointTest, ScopedDisarmsOnExitAndDisarmAllClears) {
  {
    FailPoint::Scoped scoped("test.scoped", FailPoint::Spec::Always());
    EXPECT_FALSE(FailPoint::Check("test.scoped").ok());
    EXPECT_TRUE(FailPoint::AnyArmed());
  }
  EXPECT_TRUE(FailPoint::Check("test.scoped").ok());
  EXPECT_FALSE(FailPoint::AnyArmed());

  FailPoint::Arm("a", FailPoint::Spec::Always());
  FailPoint::Arm("b", FailPoint::Spec::Always());
  FailPoint::DisarmAll();
  EXPECT_FALSE(FailPoint::AnyArmed());
  EXPECT_TRUE(FailPoint::Check("a").ok());
  EXPECT_TRUE(FailPoint::Check("b").ok());
}

// ---------------------------------------------------------------------------
// Retry

TEST(RetryTest, TransientCodeTaxonomy) {
  EXPECT_TRUE(util::IsTransientCode(StatusCode::kUnavailable));
  EXPECT_FALSE(util::IsTransientCode(StatusCode::kDataLoss));
  EXPECT_FALSE(util::IsTransientCode(StatusCode::kCancelled));
  EXPECT_FALSE(util::IsTransientCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(util::IsTransientCode(StatusCode::kOk));
}

util::RetryOptions NoSleepOptions(std::vector<double>* delays = nullptr) {
  util::RetryOptions options;
  options.sleeper = [delays](double ms) {
    if (delays != nullptr) delays->push_back(ms);
  };
  return options;
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  util::RetryStats stats;
  const Status status = util::Retry(
      NoSleepOptions(),
      [&calls]() -> Status {
        return ++calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.total_backoff_ms, 0.0);
}

TEST(RetryTest, AttemptBudgetIsAHardBound) {
  int calls = 0;
  util::RetryOptions options = NoSleepOptions();
  options.max_attempts = 4;
  const Status status = util::Retry(options, [&calls]() -> Status {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, NonTransientErrorReturnsImmediately) {
  for (const Status& fail :
       {Status::DataLoss("torn"), Status::Cancelled("stop"),
        Status::InvalidArgument("bad")}) {
    int calls = 0;
    util::RetryStats stats;
    const Status status = util::Retry(
        NoSleepOptions(),
        [&calls, &fail]() -> Status {
          ++calls;
          return fail;
        },
        &stats);
    EXPECT_EQ(status.code(), fail.code());
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(stats.attempts, 1);
    EXPECT_EQ(stats.total_backoff_ms, 0.0);
  }
}

TEST(RetryTest, BackoffGrowsExponentiallyWithinJitterBand) {
  std::vector<double> delays;
  util::RetryOptions options = NoSleepOptions(&delays);
  options.max_attempts = 6;
  options.initial_backoff_ms = 1.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 8.0;
  options.jitter_fraction = 0.25;
  (void)util::Retry(options,
                    []() -> Status { return Status::Unavailable("down"); });
  // Five retries follow the first attempt; pre-jitter schedule 1,2,4,8,8,
  // each scaled into [0.75, 1.25] of its nominal value and then clamped to
  // max_backoff_ms — the cap bounds the actual sleep, not the pre-jitter
  // base.
  ASSERT_EQ(delays.size(), 5u);
  const double nominal[] = {1.0, 2.0, 4.0, 8.0, 8.0};
  for (size_t i = 0; i < delays.size(); ++i) {
    EXPECT_GE(delays[i], nominal[i] * 0.75) << "delay " << i;
    EXPECT_LE(delays[i], std::min(nominal[i] * 1.25, options.max_backoff_ms))
        << "delay " << i;
  }
}

// Regression: the jitter draw must never push a delay past max_backoff_ms.
// The clamp used to run before jittering, so an upward draw on an at-cap
// delay could sleep up to jitter_fraction longer than the configured
// maximum.
TEST(RetryTest, JitteredDelayNeverExceedsConfiguredMax) {
  std::vector<double> delays;
  util::RetryOptions options = NoSleepOptions(&delays);
  options.max_attempts = 12;
  options.initial_backoff_ms = 64.0;  // at the cap from the first retry
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 64.0;
  options.jitter_fraction = 0.5;  // upward draws reach 1.5x pre-clamp
  util::RetryStats stats;
  (void)util::Retry(
      options, []() -> Status { return Status::Unavailable("down"); },
      &stats);
  ASSERT_EQ(delays.size(), 11u);
  bool saw_upward_draw = false;
  double slept = 0.0;
  for (const double delay : delays) {
    EXPECT_LE(delay, options.max_backoff_ms);
    EXPECT_GE(delay, options.max_backoff_ms * 0.5);  // downward band intact
    if (delay == options.max_backoff_ms) saw_upward_draw = true;
    slept += delay;
  }
  // With eleven draws at jitter 0.5, some land above 1.0 and clamp to
  // exactly the cap; if none did, the clamp-after-jitter path never ran.
  EXPECT_TRUE(saw_upward_draw);
  // The stats account what was actually slept, not the pre-clamp value.
  EXPECT_DOUBLE_EQ(stats.total_backoff_ms, slept);
  EXPECT_EQ(stats.attempts, 12);
}

TEST(RetryTest, JitterIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    std::vector<double> delays;
    util::RetryOptions options = NoSleepOptions(&delays);
    options.max_attempts = 5;
    options.jitter_seed = seed;
    (void)util::Retry(options,
                      []() -> Status { return Status::Unavailable("down"); });
    return delays;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(RetryTest, RetryOrReturnsValueAfterTransientFailure) {
  int calls = 0;
  const util::StatusOr<int> result = util::RetryOr<int>(
      NoSleepOptions(), [&calls]() -> util::StatusOr<int> {
        if (++calls == 1) return Status::Unavailable("warming up");
        return 42;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// Retrying file I/O driven through the serial.* fail points.

class FileRetryTest : public FailPointTest {};

TEST_F(FileRetryTest, ReadFileAbsorbsOneTransientFault) {
  const std::string path = ::testing::TempDir() + "/retry_read.bin";
  const std::vector<uint8_t> payload = {1, 2, 3, 4};
  ASSERT_TRUE(util::WriteFile(path, payload).ok());

  FailPoint::Arm("serial.read_file",
                 FailPoint::Spec::Once(StatusCode::kUnavailable));
  const util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, payload);
  EXPECT_EQ(FailPoint::CheckCount("serial.read_file"), 2);  // fail + retry
}

TEST_F(FileRetryTest, WriteFileAbsorbsTransientFaultsUpToTheBudget) {
  const std::string path = ::testing::TempDir() + "/retry_write.bin";
  FailPoint::Spec spec = FailPoint::Spec::Always(StatusCode::kUnavailable);
  spec.max_failures = 2;  // within the 3-attempt file budget
  FailPoint::Arm("serial.write_file", spec);
  EXPECT_TRUE(util::WriteFile(path, {9, 9, 9}).ok());
  EXPECT_EQ(FailPoint::FailureCount("serial.write_file"), 2);

  // A persistent outage exhausts the budget and surfaces kUnavailable.
  FailPoint::Arm("serial.write_file", FailPoint::Spec::Always());
  EXPECT_EQ(util::WriteFile(path, {1}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(FailPoint::CheckCount("serial.write_file"), 3);
}

TEST_F(FileRetryTest, DeterministicFaultIsNotRetried) {
  const std::string path = ::testing::TempDir() + "/retry_dataloss.bin";
  ASSERT_TRUE(util::WriteFile(path, {5}).ok());
  FailPoint::Arm("serial.read_file",
                 FailPoint::Spec::Always(StatusCode::kDataLoss));
  EXPECT_EQ(util::ReadFile(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(FailPoint::CheckCount("serial.read_file"), 1);
}

// ---------------------------------------------------------------------------
// Atomic write: the staged sequence (tmp write -> fsync -> rename) has one
// injectable site per step; a crash at any of them must leave the previous
// destination bytes intact and no temp file behind.

class AtomicWriteTest : public FailPointTest {
 protected:
  // TempDir contents persist across test-binary runs; a stale destination
  // or backup from a previous run would break "file does not exist yet"
  // assertions.
  std::string FreshPath(const std::string& stem) {
    const std::string path = ::testing::TempDir() + "/" + stem;
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".prev").c_str());
    return path;
  }
};

const char* const kAtomicSites[] = {"serial.atomic_write.tmp_write",
                                    "serial.atomic_write.fsync",
                                    "serial.atomic_write.rename"};

TEST_F(AtomicWriteTest, CrashAtEverySiteLeavesOldBytesAndNoTemp) {
  const std::string path = FreshPath("atomic_crash.bin");
  const std::vector<uint8_t> old_bytes = {1, 1, 1};
  ASSERT_TRUE(util::AtomicWriteFile(path, old_bytes).ok());
  for (const char* site : kAtomicSites) {
    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    EXPECT_EQ(util::AtomicWriteFile(path, {2, 2, 2}).code(),
              StatusCode::kDataLoss)
        << site;
    FailPoint::DisarmAll();
    // The destination still holds the complete previous bytes...
    const util::StatusOr<std::vector<uint8_t>> read = util::ReadFile(path);
    ASSERT_TRUE(read.ok()) << site;
    EXPECT_EQ(*read, old_bytes) << site;
    // ...and the staging file was unlinked.
    EXPECT_EQ(util::ReadFile(path + ".tmp").status().code(),
              StatusCode::kNotFound)
        << site;
  }
}

TEST_F(AtomicWriteTest, TransientFaultAtEverySiteIsAbsorbed) {
  const std::string path = FreshPath("atomic_transient.bin");
  for (const char* site : kAtomicSites) {
    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kUnavailable));
    EXPECT_TRUE(util::AtomicWriteFile(path, {7}).ok()) << site;
    FailPoint::DisarmAll();
  }
}

TEST_F(AtomicWriteTest, BackupRotationKeepsThePreviousGeneration) {
  const std::string path = FreshPath("atomic_gen.bin");
  util::AtomicWriteOptions options;
  options.backup_path = path + ".prev";
  ASSERT_TRUE(util::AtomicWriteFile(path, {1}, options).ok());
  // First write: nothing to rotate yet.
  EXPECT_EQ(util::ReadFile(options.backup_path).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(util::AtomicWriteFile(path, {2}, options).ok());
  EXPECT_EQ(*util::ReadFile(path), std::vector<uint8_t>({2}));
  EXPECT_EQ(*util::ReadFile(options.backup_path), std::vector<uint8_t>({1}));
}

TEST_F(AtomicWriteTest, CrashBeforeRenameDoesNotRotateTheBackup) {
  const std::string path = FreshPath("atomic_norotate.bin");
  util::AtomicWriteOptions options;
  options.backup_path = path + ".prev";
  ASSERT_TRUE(util::AtomicWriteFile(path, {1}, options).ok());
  ASSERT_TRUE(util::AtomicWriteFile(path, {2}, options).ok());
  FailPoint::Arm("serial.atomic_write.rename",
                 FailPoint::Spec::Once(StatusCode::kDataLoss));
  EXPECT_FALSE(util::AtomicWriteFile(path, {3}, options).ok());
  FailPoint::DisarmAll();
  // Both generations survive untouched: the rotation happens after the
  // injected crash point.
  EXPECT_EQ(*util::ReadFile(path), std::vector<uint8_t>({2}));
  EXPECT_EQ(*util::ReadFile(options.backup_path), std::vector<uint8_t>({1}));
}

// ---------------------------------------------------------------------------
// StatusSink suppressed-error accounting.

TEST(StatusSinkTest, CountsSuppressedErrorsAfterFirstWins) {
  util::StatusSink sink;
  EXPECT_EQ(sink.suppressed_count(), 0);
  sink.Record(Status::Ok());
  sink.Record(Status::DataLoss("first"));
  sink.Record(Status::Internal("second"));
  sink.Record(Status::Ok());  // OK records are never suppression
  sink.Record(Status::Unavailable("third"));
  EXPECT_EQ(sink.Get().code(), StatusCode::kDataLoss);
  EXPECT_EQ(sink.suppressed_count(), 2);
}

// ---------------------------------------------------------------------------
// FrameSource error stickiness (regression: a transient decode failure used
// to poison the source forever).

codec::CmvFile SmallFixture() {
  util::Rng rng(5);
  media::Video video("fs", 12.0);
  media::Image base(32, 24);
  media::FillGradient(&base, media::Rgb{40, 90, 200}, media::Rgb{10, 30, 5});
  for (int i = 0; i < 9; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::EncoderOptions options;
  options.gop_size = 3;
  return codec::EncodeVideo(video, options);
}

class FrameSourceFaultTest : public FailPointTest {};

TEST_F(FrameSourceFaultTest, TransientDecodeFailureIsNotSticky) {
  const codec::CmvFile file = SmallFixture();
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file);
  ASSERT_TRUE(source.ok());

  FailPoint::Arm("codec.gop_reader.decode_gop",
                 FailPoint::Spec::Once(StatusCode::kUnavailable));
  EXPECT_EQ((*source)->GetFrame(0).status().code(), StatusCode::kUnavailable);
  // The fault was transient; the very next request decodes cleanly.
  EXPECT_TRUE((*source)->GetFrame(0).ok());
}

TEST_F(FrameSourceFaultTest, NonRetryableFailureIsStickyInStrictMode) {
  const codec::CmvFile file = SmallFixture();
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file);
  ASSERT_TRUE(source.ok());

  FailPoint::Arm("codec.gop_reader.decode_gop",
                 FailPoint::Spec::Once(StatusCode::kDataLoss));
  EXPECT_EQ((*source)->GetFrame(0).status().code(), StatusCode::kDataLoss);
  // Sticky: even frames in undamaged GOPs now report the first error.
  EXPECT_EQ((*source)->GetFrame(8).status().code(), StatusCode::kDataLoss);
}

TEST_F(FrameSourceFaultTest, SalvageModeConfinesFailureToItsGop) {
  const codec::CmvFile file = SmallFixture();
  codec::FrameSource::Options options;
  options.salvage = true;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, options);
  ASSERT_TRUE(source.ok());

  // Fail only the first GOP decode; the rest of the container stays usable.
  FailPoint::Arm("codec.gop_reader.decode_gop",
                 FailPoint::Spec::Once(StatusCode::kDataLoss));
  EXPECT_FALSE((*source)->GetFrame(0).ok());
  EXPECT_TRUE((*source)->GetFrame(4).ok());
  EXPECT_TRUE((*source)->GetFrame(8).ok());
  // The bad GOP keeps failing with the recorded error, without re-decoding.
  EXPECT_EQ((*source)->GetFrame(1).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ((*source)->stats().failed_gops, 1);
}

}  // namespace
}  // namespace classminer

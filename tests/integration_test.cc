// Corpus-level integration: two mined titles flow through classification,
// browsing, persistence, indexing and storyboard export together, with
// cross-module invariants checked at each hand-off.

#include <gtest/gtest.h>

#include "core/classminer.h"
#include "index/browser.h"
#include "index/classifier.h"
#include "index/hier_index.h"
#include "index/linear_index.h"
#include "index/persist.h"
#include "media/ppm.h"
#include "skim/storyboard.h"
#include "synth/corpus.h"

namespace classminer {
namespace {

class CorpusIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusOptions copts;
    copts.scale = 0.5;
    const std::vector<synth::VideoScript> scripts =
        synth::MedicalCorpusScripts(copts);
    // Two contrasting titles: lecture-heavy and surgery-heavy.
    inputs_ = new std::vector<synth::GeneratedVideo>();
    results_ = new std::vector<core::MiningResult>();
    db_ = new index::VideoDatabase();
    for (const char* name : {"nuclear_medicine", "laparoscopy"}) {
      for (const synth::VideoScript& s : scripts) {
        if (s.name != name) continue;
        inputs_->push_back(synth::GenerateVideo(s));
        util::StatusOr<core::MiningResult> mined =
            core::MineVideo(inputs_->back().video, inputs_->back().audio);
        ASSERT_TRUE(mined.ok()) << mined.status().ToString();
        results_->push_back(std::move(*mined));
        db_->AddVideo(s.name, results_->back().structure,
                      results_->back().events);
      }
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    delete results_;
    delete inputs_;
    db_ = nullptr;
    results_ = nullptr;
    inputs_ = nullptr;
  }

  static std::vector<synth::GeneratedVideo>* inputs_;
  static std::vector<core::MiningResult>* results_;
  static index::VideoDatabase* db_;
};

std::vector<synth::GeneratedVideo>* CorpusIntegrationTest::inputs_ = nullptr;
std::vector<core::MiningResult>* CorpusIntegrationTest::results_ = nullptr;
index::VideoDatabase* CorpusIntegrationTest::db_ = nullptr;

TEST_F(CorpusIntegrationTest, ClassifierSeparatesTitles) {
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();
  const index::SemanticClassifier classifier(&concepts);
  const std::vector<index::VideoAssignment> assignments =
      classifier.ClassifyDatabase(*db_);
  ASSERT_EQ(assignments.size(), 2u);
  // Lecture-heavy title lands under medical_education; surgery-heavy under
  // health_care.
  EXPECT_EQ(concepts.node(assignments[0].cluster_node).name,
            "medical_education");
  EXPECT_EQ(concepts.node(assignments[1].cluster_node).name, "health_care");
}

TEST_F(CorpusIntegrationTest, BrowseTreeRespectsClearance) {
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();
  const index::AccessController access(&concepts);

  index::UserCredential surgeon{"surgeon", 3, {}};
  index::UserCredential student{"student", 1, {}};
  const auto full =
      index::BuildBrowseTree(*db_, concepts, access, surgeon);
  const auto limited =
      index::BuildBrowseTree(*db_, concepts, access, student);

  size_t full_scenes = 0, limited_scenes = 0;
  bool limited_has_clinical = false;
  for (const auto& c : full) {
    for (const auto& v : c.videos) full_scenes += v.scenes.size();
  }
  for (const auto& c : limited) {
    for (const auto& v : c.videos) {
      limited_scenes += v.scenes.size();
      for (const auto& s : v.scenes) {
        limited_has_clinical |=
            s.event == events::EventType::kClinicalOperation;
      }
    }
  }
  EXPECT_GT(full_scenes, limited_scenes);
  EXPECT_FALSE(limited_has_clinical);

  const std::string text = index::RenderBrowseTree(full);
  EXPECT_NE(text.find("nuclear_medicine"), std::string::npos);
  EXPECT_NE(text.find("scene"), std::string::npos);
}

TEST_F(CorpusIntegrationTest, PersistedDatabaseAnswersSameQueries) {
  const std::string path = ::testing::TempDir() + "/integration.cmdb";
  ASSERT_TRUE(index::SaveDatabase(*db_, path).ok());
  util::StatusOr<index::VideoDatabase> reloaded = index::LoadDatabase(path);
  ASSERT_TRUE(reloaded.ok());

  const index::LinearIndex before(db_);
  const index::LinearIndex after(&*reloaded);
  for (int s = 0; s < 6; ++s) {
    const index::ShotRef q{0, s * 3};
    const auto a = before.Search(db_->Features(q), 3);
    const auto b = after.Search(reloaded->Features(q), 3);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ref, b[i].ref);
      EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
    }
  }
}

TEST_F(CorpusIntegrationTest, HierIndexCoversBothVideos) {
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();
  const index::HierarchicalIndex hier(db_, &concepts);
  EXPECT_EQ(hier.TotalIndexedShots(), db_->TotalShotCount());
}

TEST_F(CorpusIntegrationTest, StoryboardExports) {
  const skim::ScalableSkim sk(&(*results_)[0].structure);
  const media::Image sheet = skim::RenderStoryboard(
      sk, 3, (*inputs_)[0].video, (*results_)[0].events);
  ASSERT_FALSE(sheet.empty());
  EXPECT_GT(sheet.width(), 96);
  EXPECT_GT(sheet.height(), 72);

  const std::string path = ::testing::TempDir() + "/storyboard.ppm";
  ASSERT_TRUE(skim::ExportStoryboard(sk, 3, (*inputs_)[0].video,
                                     (*results_)[0].events, path)
                  .ok());
  util::StatusOr<media::Image> back = media::ReadPpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), sheet.width());
}

TEST_F(CorpusIntegrationTest, StoryboardEmptyTrackFails) {
  structure::ContentStructure empty;
  const skim::ScalableSkim sk(&empty);
  EXPECT_FALSE(skim::ExportStoryboard(sk, 4, (*inputs_)[0].video,
                                      (*results_)[0].events,
                                      ::testing::TempDir() + "/none.ppm")
                   .ok());
}

}  // namespace
}  // namespace classminer

// Determinism guarantee of the pipeline runtime: mining the same video at
// thread_count = 1 and thread_count = N must produce bit-identical
// MiningResults, under both sequential-stage and DAG scheduling. Every
// parallel loop uses fixed per-index partitioning and serial reductions,
// and stage dependencies mirror the true data flow, so this holds exactly
// (double == double), not just approximately.

#include <gtest/gtest.h>

#include "core/classminer.h"
#include "core/cmv_pipeline.h"
#include "synth/corpus.h"

namespace classminer {
namespace {

void ExpectFeaturesIdentical(const features::ShotFeatures& a,
                             const features::ShotFeatures& b) {
  for (size_t k = 0; k < a.histogram.size(); ++k) {
    ASSERT_EQ(a.histogram[k], b.histogram[k]);
  }
  for (size_t k = 0; k < a.tamura.size(); ++k) {
    ASSERT_EQ(a.tamura[k], b.tamura[k]);
  }
}

void ExpectResultsIdentical(const core::MiningResult& serial,
                            const core::MiningResult& parallel) {
  // Shot detection trace: identical cut positions, differences, thresholds.
  EXPECT_EQ(parallel.shot_trace.cuts, serial.shot_trace.cuts);
  EXPECT_EQ(parallel.shot_trace.differences, serial.shot_trace.differences);
  EXPECT_EQ(parallel.shot_trace.thresholds, serial.shot_trace.thresholds);

  // Shots, including representative frames and raw feature bits.
  ASSERT_EQ(parallel.structure.shots.size(), serial.structure.shots.size());
  for (size_t i = 0; i < serial.structure.shots.size(); ++i) {
    const shot::Shot& s = serial.structure.shots[i];
    const shot::Shot& p = parallel.structure.shots[i];
    EXPECT_EQ(p.start_frame, s.start_frame);
    EXPECT_EQ(p.end_frame, s.end_frame);
    EXPECT_EQ(p.rep_frame, s.rep_frame);
    ExpectFeaturesIdentical(s.features, p.features);
  }

  // Groups.
  ASSERT_EQ(parallel.structure.groups.size(), serial.structure.groups.size());
  for (size_t i = 0; i < serial.structure.groups.size(); ++i) {
    const structure::Group& g = serial.structure.groups[i];
    const structure::Group& h = parallel.structure.groups[i];
    EXPECT_EQ(h.start_shot, g.start_shot);
    EXPECT_EQ(h.end_shot, g.end_shot);
    EXPECT_EQ(h.temporally_related, g.temporally_related);
    EXPECT_EQ(h.rep_shots, g.rep_shots);
  }

  // Scenes.
  ASSERT_EQ(parallel.structure.scenes.size(), serial.structure.scenes.size());
  for (size_t i = 0; i < serial.structure.scenes.size(); ++i) {
    const structure::Scene& s = serial.structure.scenes[i];
    const structure::Scene& p = parallel.structure.scenes[i];
    EXPECT_EQ(p.start_group, s.start_group);
    EXPECT_EQ(p.end_group, s.end_group);
    EXPECT_EQ(p.rep_group, s.rep_group);
    EXPECT_EQ(p.eliminated, s.eliminated);
  }

  // Clustered scenes: identical memberships and centroids.
  ASSERT_EQ(parallel.structure.clustered_scenes.size(),
            serial.structure.clustered_scenes.size());
  for (size_t i = 0; i < serial.structure.clustered_scenes.size(); ++i) {
    EXPECT_EQ(parallel.structure.clustered_scenes[i].scene_indices,
              serial.structure.clustered_scenes[i].scene_indices);
    EXPECT_EQ(parallel.structure.clustered_scenes[i].rep_group,
              serial.structure.clustered_scenes[i].rep_group);
  }

  // Visual cues.
  ASSERT_EQ(parallel.shot_cues.size(), serial.shot_cues.size());
  for (size_t i = 0; i < serial.shot_cues.size(); ++i) {
    const cues::FrameCues& c = serial.shot_cues[i];
    const cues::FrameCues& d = parallel.shot_cues[i];
    EXPECT_EQ(d.special, c.special);
    EXPECT_EQ(d.has_face, c.has_face);
    EXPECT_EQ(d.face_closeup, c.face_closeup);
    EXPECT_EQ(d.max_face_fraction, c.max_face_fraction);
    EXPECT_EQ(d.has_skin_region, c.has_skin_region);
    EXPECT_EQ(d.skin_closeup, c.skin_closeup);
    EXPECT_EQ(d.max_skin_fraction, c.max_skin_fraction);
    EXPECT_EQ(d.has_blood, c.has_blood);
    EXPECT_EQ(d.max_blood_fraction, c.max_blood_fraction);
  }

  // Audio analyses (speech flags, margins, MFCC bits).
  ASSERT_EQ(parallel.shot_audio.size(), serial.shot_audio.size());
  for (size_t i = 0; i < serial.shot_audio.size(); ++i) {
    const audio::ShotAudioAnalysis& a = serial.shot_audio[i];
    const audio::ShotAudioAnalysis& b = parallel.shot_audio[i];
    EXPECT_EQ(b.analyzable, a.analyzable);
    EXPECT_EQ(b.has_speech, a.has_speech);
    EXPECT_EQ(b.speech_margin, a.speech_margin);
    ASSERT_EQ(b.mfcc.rows(), a.mfcc.rows());
    ASSERT_EQ(b.mfcc.cols(), a.mfcc.cols());
    for (size_t r = 0; r < a.mfcc.rows(); ++r) {
      for (size_t c = 0; c < a.mfcc.cols(); ++c) {
        ASSERT_EQ(b.mfcc.at(r, c), a.mfcc.at(r, c));
      }
    }
  }

  // Event labels.
  ASSERT_EQ(parallel.events.size(), serial.events.size());
  for (size_t i = 0; i < serial.events.size(); ++i) {
    EXPECT_EQ(parallel.events[i].scene_index, serial.events[i].scene_index);
    EXPECT_EQ(parallel.events[i].type, serial.events[i].type);
  }
}

TEST(ParallelPipelineTest, MineVideoDeterministicAcrossSchedulesAndThreads) {
  for (const uint64_t seed : {91u, 92u}) {
    const synth::GeneratedVideo g = synth::GenerateVideo(
        synth::QuickScript(seed));

    core::MiningOptions serial_opts;
    serial_opts.thread_count = 1;
    const util::StatusOr<core::MiningResult> serial =
        core::MineVideo(g.video, g.audio, serial_opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    for (const core::StageScheduling scheduling :
         {core::StageScheduling::kSequential, core::StageScheduling::kDag}) {
      for (const int threads : {2, 8}) {
        core::MiningOptions parallel_opts;
        parallel_opts.thread_count = threads;
        parallel_opts.scheduling = scheduling;
        const util::StatusOr<core::MiningResult> parallel =
            core::MineVideo(g.video, g.audio, parallel_opts);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

        SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                     std::to_string(threads) +
                     (scheduling == core::StageScheduling::kDag
                          ? " dag"
                          : " sequential"));
        ExpectResultsIdentical(*serial, *parallel);
      }
    }
  }
}

TEST(ParallelPipelineTest, MineCmvFileFastDeterministicAcrossThreadCounts) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(93));
  const codec::CmvFile file = core::PackGeneratedVideo(g);

  core::MiningOptions serial_opts;
  serial_opts.thread_count = 1;
  util::StatusOr<core::MiningResult> serial =
      core::MineCmvFileFast(file, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (const core::StageScheduling scheduling :
       {core::StageScheduling::kSequential, core::StageScheduling::kDag}) {
    core::MiningOptions parallel_opts;
    parallel_opts.thread_count = 4;
    parallel_opts.scheduling = scheduling;
    util::StatusOr<core::MiningResult> parallel =
        core::MineCmvFileFast(file, parallel_opts);
    ASSERT_TRUE(parallel.ok());

    SCOPED_TRACE(scheduling == core::StageScheduling::kDag ? "dag"
                                                           : "sequential");
    ExpectResultsIdentical(*serial, *parallel);
  }
}

TEST(ParallelPipelineTest, MetricsRecordEveryStage) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(94));
  core::MiningOptions options;
  options.thread_count = 2;
  const util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio, options);
  ASSERT_TRUE(mined.ok());
  const core::MiningResult& result = *mined;

  for (const char* stage :
       {"shot", "audio", "group", "scene", "cluster", "cues", "events"}) {
    const core::StageMetrics* m = result.metrics.Find(stage);
    ASSERT_NE(m, nullptr) << "missing stage " << stage;
    EXPECT_GE(m->wall_ms, 0.0);
    EXPECT_EQ(m->threads, 2);
  }
  EXPECT_GT(result.metrics.TotalMs(), 0.0);
  EXPECT_FALSE(result.metrics.ToString().empty());
  // The registry reports stages in execution order.
  EXPECT_EQ(result.metrics.stages.front().name, "shot");
  EXPECT_EQ(result.metrics.stages.back().name, "events");
}

}  // namespace
}  // namespace classminer

// Unit tests for the Sec. 4.3 rule engine on hand-built structures, cues
// and audio analyses (no full pipeline involved).

#include <gtest/gtest.h>

#include "events/event_miner.h"
#include "synth/audio_generator.h"
#include "util/rng.h"

namespace classminer::events {
namespace {

// One scene of `n` shots in one group.
structure::ContentStructure OneSceneStructure(int n, bool temporal) {
  structure::ContentStructure cs;
  for (int i = 0; i < n; ++i) {
    shot::Shot s;
    s.index = i;
    s.start_frame = i * 30;
    s.end_frame = i * 30 + 29;
    cs.shots.push_back(s);
  }
  structure::Group g;
  g.index = 0;
  g.start_shot = 0;
  g.end_shot = n - 1;
  g.temporally_related = temporal;
  cs.groups.push_back(g);
  structure::Scene scene;
  scene.index = 0;
  scene.start_group = 0;
  scene.end_group = 0;
  scene.rep_group = 0;
  cs.scenes.push_back(scene);
  return cs;
}

audio::ShotAudioAnalysis SpeechAnalysis(int shot, int speaker,
                                        uint64_t seed) {
  audio::AudioBuffer buf(16000);
  util::Rng rng(seed);
  synth::AppendSpeech(&buf, synth::MakeSpeakerVoice(speaker), 2.5, &rng);
  audio::SpeakerSegmenter seg;
  audio::ShotAudioAnalysis a = seg.AnalyzeShot(buf, 0.0, 2.5, shot);
  a.shot_index = shot;
  return a;
}

audio::ShotAudioAnalysis SilentAnalysis(int shot) {
  audio::ShotAudioAnalysis a;
  a.shot_index = shot;
  a.analyzable = true;
  a.has_speech = false;
  return a;
}

cues::FrameCues SlideCues() {
  cues::FrameCues c;
  c.special = cues::SpecialFrameType::kSlide;
  return c;
}

cues::FrameCues FaceCues(bool closeup = true) {
  cues::FrameCues c;
  c.has_face = true;
  c.face_closeup = closeup;
  c.has_skin_region = true;
  c.max_face_fraction = closeup ? 0.15 : 0.05;
  return c;
}

cues::FrameCues SkinCues() {
  cues::FrameCues c;
  c.has_skin_region = true;
  c.skin_closeup = true;
  c.max_skin_fraction = 0.4;
  return c;
}

cues::FrameCues BloodCues() {
  cues::FrameCues c;
  c.has_blood = true;
  c.max_blood_fraction = 0.1;
  return c;
}

TEST(EventMinerTest, PresentationDetected) {
  auto cs = OneSceneStructure(4, /*temporal=*/true);
  std::vector<cues::FrameCues> shot_cues{SlideCues(), FaceCues(), SlideCues(),
                                         FaceCues()};
  // Same presenter throughout.
  std::vector<audio::ShotAudioAnalysis> shot_audio;
  for (int i = 0; i < 4; ++i) {
    shot_audio.push_back(SpeechAnalysis(i, /*speaker=*/1, 100 + i));
  }
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  const EventRecord rec = miner.ClassifyScene(cs.scenes[0]);
  EXPECT_EQ(rec.type, EventType::kPresentation);
  EXPECT_TRUE(rec.has_slide);
  EXPECT_TRUE(rec.has_face_closeup);
  EXPECT_FALSE(rec.any_speaker_change);
}

TEST(EventMinerTest, PresentationBlockedBySpeakerChange) {
  auto cs = OneSceneStructure(4, true);
  std::vector<cues::FrameCues> shot_cues{SlideCues(), FaceCues(), SlideCues(),
                                         FaceCues()};
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SpeechAnalysis(0, 1, 110), SpeechAnalysis(1, 2, 111),
      SpeechAnalysis(2, 1, 112), SpeechAnalysis(3, 2, 113)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_NE(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kPresentation);
}

TEST(EventMinerTest, PresentationNeedsTemporalGroup) {
  auto cs = OneSceneStructure(4, /*temporal=*/false);
  std::vector<cues::FrameCues> shot_cues{SlideCues(), FaceCues(), SlideCues(),
                                         FaceCues()};
  std::vector<audio::ShotAudioAnalysis> shot_audio;
  for (int i = 0; i < 4; ++i) shot_audio.push_back(SpeechAnalysis(i, 1, 120 + i));
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_NE(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kPresentation);
}

TEST(EventMinerTest, DialogDetected) {
  auto cs = OneSceneStructure(4, true);
  std::vector<cues::FrameCues> shot_cues{FaceCues(), FaceCues(), FaceCues(),
                                         FaceCues()};
  // A-B-A-B alternation: changes at every boundary, speaker A duplicated.
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SpeechAnalysis(0, 5, 130), SpeechAnalysis(1, 6, 131),
      SpeechAnalysis(2, 5, 132), SpeechAnalysis(3, 6, 133)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  const EventRecord rec = miner.ClassifyScene(cs.scenes[0]);
  EXPECT_EQ(rec.type, EventType::kDialog);
  EXPECT_TRUE(rec.dialog_speaker_duplicated);
}

TEST(EventMinerTest, TwoShotExchangeIsNotDialog) {
  // A single A-B exchange has no duplicated speaker.
  auto cs = OneSceneStructure(2, true);
  std::vector<cues::FrameCues> shot_cues{FaceCues(), FaceCues()};
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SpeechAnalysis(0, 5, 140), SpeechAnalysis(1, 6, 141)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_NE(miner.ClassifyScene(cs.scenes[0]).type, EventType::kDialog);
}

TEST(EventMinerTest, ClinicalViaSkinCloseup) {
  auto cs = OneSceneStructure(3, false);
  std::vector<cues::FrameCues> shot_cues{SkinCues(), cues::FrameCues{},
                                         cues::FrameCues{}};
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SilentAnalysis(0), SilentAnalysis(1), SilentAnalysis(2)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_EQ(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kClinicalOperation);
}

TEST(EventMinerTest, ClinicalViaBlood) {
  auto cs = OneSceneStructure(3, false);
  std::vector<cues::FrameCues> shot_cues{cues::FrameCues{}, BloodCues(),
                                         cues::FrameCues{}};
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SilentAnalysis(0), SilentAnalysis(1), SilentAnalysis(2)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_EQ(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kClinicalOperation);
}

TEST(EventMinerTest, ClinicalViaMajoritySkin) {
  auto cs = OneSceneStructure(4, false);
  cues::FrameCues skin_only;
  skin_only.has_skin_region = true;
  std::vector<cues::FrameCues> shot_cues{skin_only, skin_only, skin_only,
                                         cues::FrameCues{}};
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SilentAnalysis(0), SilentAnalysis(1), SilentAnalysis(2),
      SilentAnalysis(3)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_EQ(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kClinicalOperation);
}

TEST(EventMinerTest, EquipmentSceneUndetermined) {
  auto cs = OneSceneStructure(3, false);
  std::vector<cues::FrameCues> shot_cues(3);
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SilentAnalysis(0), SilentAnalysis(1), SilentAnalysis(2)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_EQ(miner.ClassifyScene(cs.scenes[0]).type,
            EventType::kUndetermined);
}

TEST(EventMinerTest, MineAllScenesSkipsEliminated) {
  auto cs = OneSceneStructure(3, false);
  cs.scenes[0].eliminated = true;
  std::vector<cues::FrameCues> shot_cues(3);
  std::vector<audio::ShotAudioAnalysis> shot_audio{
      SilentAnalysis(0), SilentAnalysis(1), SilentAnalysis(2)};
  EventMiner miner(&cs, &shot_cues, &shot_audio);
  EXPECT_TRUE(miner.MineAllScenes().empty());
}

TEST(EventTypeTest, Names) {
  EXPECT_STREQ(EventTypeName(EventType::kPresentation), "presentation");
  EXPECT_STREQ(EventTypeName(EventType::kDialog), "dialog");
  EXPECT_STREQ(EventTypeName(EventType::kClinicalOperation),
               "clinical_operation");
  EXPECT_STREQ(EventTypeName(EventType::kUndetermined), "undetermined");
}

}  // namespace
}  // namespace classminer::events

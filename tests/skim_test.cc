#include <gtest/gtest.h>

#include "core/classminer.h"
#include "skim/evaluator.h"
#include "skim/skimmer.h"
#include "skim/summary.h"
#include "synth/corpus.h"
#include "util/serial.h"

namespace classminer::skim {
namespace {

class SkimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generated_ = new synth::GeneratedVideo(
        synth::GenerateVideo(synth::QuickScript(21)));
    util::StatusOr<core::MiningResult> mined =
        core::MineVideo(generated_->video, generated_->audio);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    result_ = new core::MiningResult(std::move(*mined));
    skim_ = new ScalableSkim(&result_->structure);
  }
  static void TearDownTestSuite() {
    delete skim_;
    delete result_;
    delete generated_;
    skim_ = nullptr;
    result_ = nullptr;
    generated_ = nullptr;
  }

  static synth::GeneratedVideo* generated_;
  static core::MiningResult* result_;
  static ScalableSkim* skim_;
};

synth::GeneratedVideo* SkimTest::generated_ = nullptr;
core::MiningResult* SkimTest::result_ = nullptr;
ScalableSkim* SkimTest::skim_ = nullptr;

TEST_F(SkimTest, LevelOneIsAllShots) {
  EXPECT_EQ(skim_->track(1).shot_indices.size(),
            result_->structure.shots.size());
  EXPECT_NEAR(skim_->Fcr(1), 1.0, 1e-9);
}

TEST_F(SkimTest, FcrDecreasesWithLevel) {
  for (int lvl = 2; lvl <= kSkimLevels; ++lvl) {
    EXPECT_LE(skim_->Fcr(lvl), skim_->Fcr(lvl - 1) + 1e-9)
        << "level " << lvl;
  }
  EXPECT_LT(skim_->Fcr(4), 0.7);
}

TEST_F(SkimTest, TracksAreSortedSubsets) {
  for (int lvl = 1; lvl <= kSkimLevels; ++lvl) {
    const SkimTrack& t = skim_->track(lvl);
    for (size_t i = 1; i < t.shot_indices.size(); ++i) {
      EXPECT_LT(t.shot_indices[i - 1], t.shot_indices[i]);
    }
    for (int s : t.shot_indices) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, static_cast<int>(result_->structure.shots.size()));
    }
  }
}

TEST_F(SkimTest, ScrollPositionMonotone) {
  const SkimTrack& t = skim_->track(2);
  double prev = -1.0;
  for (size_t i = 0; i < t.shot_indices.size(); ++i) {
    const double pos = skim_->ScrollPosition(2, static_cast<int>(i));
    EXPECT_GE(pos, prev);
    EXPECT_LE(pos, 1.0);
    prev = pos;
  }
}

TEST_F(SkimTest, EvaluatorShapesMatchPaper) {
  SkimScores by_level[kSkimLevels + 1];
  for (int lvl = 1; lvl <= kSkimLevels; ++lvl) {
    by_level[lvl] = EvaluateSkimLevel(*skim_, lvl, generated_->truth);
  }
  // Coverage (Q1/Q2) cannot improve with coarser levels...
  EXPECT_GE(by_level[1].q2 + 1e-9, by_level[4].q2);
  // ...while conciseness (Q3) cannot degrade.
  EXPECT_LE(by_level[1].q3, by_level[4].q3 + 1e-9);
  // Level 1 covers everything.
  EXPECT_NEAR(by_level[1].q1, 5.0, 1e-9);
  EXPECT_NEAR(by_level[1].q2, 5.0, 1e-9);
  for (int lvl = 1; lvl <= kSkimLevels; ++lvl) {
    EXPECT_GE(by_level[lvl].q1, 0.0);
    EXPECT_LE(by_level[lvl].q1, 5.0);
    EXPECT_LE(by_level[lvl].q3, 5.0);
  }
}

TEST_F(SkimTest, ColorBarCoversTimeline) {
  const std::vector<ColorBarSegment> bar =
      BuildColorBar(result_->structure, result_->events);
  ASSERT_FALSE(bar.empty());
  EXPECT_NEAR(bar.front().begin, 0.0, 1e-9);
  EXPECT_NEAR(bar.back().end, 1.0, 1e-9);
  for (size_t i = 1; i < bar.size(); ++i) {
    EXPECT_NEAR(bar[i].begin, bar[i - 1].end, 1e-9);
  }
}

TEST_F(SkimTest, TextSummaryMentionsStructure) {
  const std::string text =
      RenderTextSummary(result_->structure, result_->events, *skim_);
  EXPECT_NE(text.find("content structure"), std::string::npos);
  EXPECT_NE(text.find("scene"), std::string::npos);
  EXPECT_NE(text.find("CRF"), std::string::npos);
}

TEST_F(SkimTest, HtmlExportWritesFile) {
  const std::string path = ::testing::TempDir() + "/skim_summary.html";
  ASSERT_TRUE(ExportHtmlSummary(result_->structure, result_->events, *skim_,
                                "test_video", path)
                  .ok());
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::string html(bytes->begin(), bytes->end());
  EXPECT_NE(html.find("<html>"), std::string::npos);
  EXPECT_NE(html.find("Event indicator"), std::string::npos);
}

TEST(EventColorTest, DistinctColors) {
  EXPECT_STRNE(EventColor(events::EventType::kPresentation),
               EventColor(events::EventType::kDialog));
  EXPECT_STRNE(EventColor(events::EventType::kDialog),
               EventColor(events::EventType::kClinicalOperation));
}

TEST(AverageScoresTest, Averages) {
  SkimScores a{4.0, 2.0, 1.0};
  SkimScores b{2.0, 4.0, 3.0};
  const SkimScores avg = AverageScores({a, b});
  EXPECT_DOUBLE_EQ(avg.q1, 3.0);
  EXPECT_DOUBLE_EQ(avg.q2, 3.0);
  EXPECT_DOUBLE_EQ(avg.q3, 2.0);
}

}  // namespace
}  // namespace classminer::skim

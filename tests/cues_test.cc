#include <gtest/gtest.h>

#include "cues/blood.h"
#include "cues/cue_extractor.h"
#include "cues/face.h"
#include "cues/skin.h"
#include "cues/special_frames.h"
#include "media/color.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::cues {
namespace {

media::Image NaturalFrame(uint64_t seed, media::Rgb base = {90, 110, 140}) {
  util::Rng rng(seed);
  media::Image img(96, 72);
  media::FillGradient(&img, base,
                      media::Rgb{static_cast<uint8_t>(base.r / 2),
                                 static_cast<uint8_t>(base.g / 2),
                                 static_cast<uint8_t>(base.b / 2)});
  media::AddNoise(&img, 5, &rng);
  return img;
}

media::Image SlideFrame(uint64_t seed) {
  util::Rng rng(seed);
  media::Image img(96, 72, media::Rgb{235, 232, 224});
  media::FillRect(&img, 0, 0, 96, 9, media::Rgb{60, 90, 180});
  for (int i = 0; i < 5; ++i) {
    media::DrawTextLine(&img, 10, 18 + i * 8, 70, 2, media::Rgb{40, 40, 48},
                        &rng);
  }
  return img;
}

media::Image FaceFrame(uint64_t seed, double scale = 1.0) {
  util::Rng rng(seed);
  media::Image img(96, 72);
  media::FillGradient(&img, media::Rgb{70, 90, 130}, media::Rgb{30, 40, 60});
  const media::Rgb skin{205, 150, 120};
  const int cx = 48, cy = 30;
  const int rx = static_cast<int>(23 * scale), ry = static_cast<int>(23 * scale);
  media::FillEllipse(&img, cx, cy, rx, ry, skin);
  // Eyes and mouth.
  media::FillEllipse(&img, cx - 9, cy - 4, 4, 2, media::Rgb{30, 26, 24});
  media::FillEllipse(&img, cx + 9, cy - 4, 4, 2, media::Rgb{30, 26, 24});
  media::FillRect(&img, cx - 8, cy + 12, 16, 3, media::Rgb{95, 42, 42});
  media::AddNoise(&img, 4, &rng);
  return img;
}

TEST(SpecialFrameTest, BlackFrame) {
  util::Rng rng(1);
  media::Image img(96, 72, media::Rgb{8, 8, 10});
  media::AddNoise(&img, 3, &rng);
  EXPECT_EQ(ClassifySpecialFrame(img), SpecialFrameType::kBlack);
}

TEST(SpecialFrameTest, SlideDetected) {
  EXPECT_EQ(ClassifySpecialFrame(SlideFrame(2)), SpecialFrameType::kSlide);
}

TEST(SpecialFrameTest, NaturalFrameIsNone) {
  EXPECT_EQ(ClassifySpecialFrame(NaturalFrame(3)), SpecialFrameType::kNone);
  EXPECT_EQ(ClassifySpecialFrame(FaceFrame(4)), SpecialFrameType::kNone);
}

TEST(SpecialFrameTest, SketchDetected) {
  media::Image img(96, 72, media::Rgb{248, 248, 246});
  const media::Rgb line{50, 50, 54};
  media::FillEllipse(&img, 48, 36, 28, 20, line);
  media::FillEllipse(&img, 48, 36, 26, 18, media::Rgb{248, 248, 246});
  media::DrawHLine(&img, 70, 92, 20, line);
  media::DrawHLine(&img, 70, 92, 32, line);
  EXPECT_EQ(ClassifySpecialFrame(img), SpecialFrameType::kSketch);
}

TEST(SpecialFrameTest, ClipArtDetected) {
  media::Image img(96, 72, media::Rgb{240, 240, 236});
  media::FillRect(&img, 10, 10, 25, 16, media::Rgb{200, 90, 40});
  media::FillRect(&img, 55, 40, 25, 16, media::Rgb{60, 140, 200});
  media::DrawHLine(&img, 22, 67, 33, media::Rgb{40, 40, 48});
  const SpecialFrameType type = ClassifySpecialFrame(img);
  EXPECT_TRUE(type == SpecialFrameType::kClipArt ||
              type == SpecialFrameType::kSlide)
      << SpecialFrameTypeName(type);
}

TEST(SpecialFrameTest, StatsSaneOnNatural) {
  const FrameStats s = ComputeFrameStats(NaturalFrame(5));
  EXPECT_GT(s.noise_level, 1.0);
  EXPECT_LT(s.flat_fraction, 0.5);
  EXPECT_GT(s.mean_luma, 20.0);
}

TEST(SkinTest, DetectsLargeSkinRegion) {
  util::Rng rng(6);
  media::Image img(96, 72);
  media::FillGradient(&img, media::Rgb{60, 70, 90}, media::Rgb{30, 35, 45});
  media::FillEllipse(&img, 48, 36, 40, 28, media::Rgb{205, 150, 120});
  media::AddNoise(&img, 4, &rng);
  const SkinDetection det = DetectSkin(img);
  ASSERT_FALSE(det.regions.empty());
  EXPECT_GT(det.max_region_fraction, 0.2);
}

TEST(SkinTest, RejectsNonSkinColours) {
  EXPECT_TRUE(DetectSkin(NaturalFrame(7)).regions.empty());
  // Saturated green frame.
  util::Rng rng(8);
  media::Image img(96, 72, media::Rgb{40, 200, 60});
  media::AddNoise(&img, 4, &rng);
  EXPECT_TRUE(DetectSkin(img).regions.empty());
}

TEST(SkinTest, ModelAcceptsSkinRejectsBlood) {
  const ChromaGaussian skin = DefaultSkinModel();
  EXPECT_TRUE(skin.Accepts(media::Rgb{205, 150, 120}));
  EXPECT_TRUE(skin.Accepts(media::Rgb{190, 140, 110}));
  EXPECT_FALSE(skin.Accepts(media::Rgb{140, 45, 40}));   // blood
  EXPECT_FALSE(skin.Accepts(media::Rgb{128, 128, 128}));  // grey
}

TEST(BloodTest, ModelAcceptsBloodRejectsSkin) {
  const ChromaGaussian blood = DefaultBloodModel();
  EXPECT_TRUE(blood.Accepts(media::Rgb{140, 45, 40}));
  EXPECT_FALSE(blood.Accepts(media::Rgb{205, 150, 120}));
}

TEST(BloodTest, DetectsBloodBlob) {
  util::Rng rng(9);
  media::Image img(96, 72, media::Rgb{205, 150, 120});  // tissue field
  media::FillEllipse(&img, 48, 36, 20, 14, media::Rgb{140, 45, 40});
  media::AddNoise(&img, 4, &rng);
  const SkinDetection det = DetectBlood(img);
  ASSERT_FALSE(det.regions.empty());
  EXPECT_GT(det.max_region_fraction, 0.05);
}

TEST(FaceTest, DetectsSyntheticFace) {
  const FaceDetection det = DetectFaces(FaceFrame(10));
  ASSERT_TRUE(det.has_face);
  EXPECT_TRUE(det.has_closeup);
  EXPECT_GT(det.max_face_fraction, 0.10);
}

TEST(FaceTest, SkinBlobWithoutFeaturesRejected) {
  // A featureless skin ellipse (no eyes/mouth) must fail verification.
  util::Rng rng(11);
  media::Image img(96, 72);
  media::FillGradient(&img, media::Rgb{70, 90, 130}, media::Rgb{30, 40, 60});
  media::FillEllipse(&img, 48, 30, 23, 23, media::Rgb{205, 150, 120});
  media::AddNoise(&img, 4, &rng);
  EXPECT_FALSE(DetectFaces(img).has_face);
}

TEST(FaceTest, ProfileScoreHigherWithFeatures) {
  const media::Image with = FaceFrame(12);
  const FaceDetection det = DetectFaces(with);
  ASSERT_TRUE(det.has_face);
  EXPECT_GT(det.faces[0].profile_score, 0.3);
}

TEST(CueExtractorTest, SlideShortCircuitsRegions) {
  const FrameCues cues = ExtractFrameCues(SlideFrame(13));
  EXPECT_EQ(cues.special, SpecialFrameType::kSlide);
  EXPECT_FALSE(cues.has_face);
  EXPECT_FALSE(cues.has_skin_region);
  EXPECT_TRUE(cues.IsSlideOrClipArt());
}

TEST(CueExtractorTest, FaceFrameCues) {
  const FrameCues cues = ExtractFrameCues(FaceFrame(14));
  EXPECT_EQ(cues.special, SpecialFrameType::kNone);
  EXPECT_TRUE(cues.has_face);
  EXPECT_TRUE(cues.face_closeup);
  EXPECT_TRUE(cues.has_skin_region);
}

TEST(CueExtractorTest, SkinCloseupFlag) {
  util::Rng rng(15);
  media::Image img(96, 72);
  media::FillGradient(&img, media::Rgb{60, 70, 90}, media::Rgb{30, 35, 45});
  media::FillEllipse(&img, 48, 36, 40, 28, media::Rgb{205, 150, 120});
  media::AddNoise(&img, 4, &rng);
  const FrameCues cues = ExtractFrameCues(img);
  EXPECT_TRUE(cues.skin_closeup);
  EXPECT_GE(cues.max_skin_fraction, 0.20);
}

}  // namespace
}  // namespace classminer::cues

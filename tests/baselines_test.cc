#include <gtest/gtest.h>

#include "baselines/lin_zhang.h"
#include "baselines/rui_toc.h"
#include "baselines/yeung_stg.h"
#include "media/color.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::baselines {
namespace {

shot::Shot MakeShot(int index, double hue, uint64_t seed = 5) {
  util::Rng rng(seed + static_cast<uint64_t>(index));
  media::Image img(48, 36, media::HsvToRgb({hue, 0.7, 0.8}));
  media::AddNoise(&img, 4, &rng);
  shot::Shot s;
  s.index = index;
  s.start_frame = index * 30;
  s.end_frame = index * 30 + 29;
  s.features = features::ExtractShotFeatures(img);
  return s;
}

// Three semantic units: AAAA BBBB CCCC with distinct hues.
std::vector<shot::Shot> ThreeUnits() {
  std::vector<shot::Shot> shots;
  int i = 0;
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, 0));
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, 130));
  for (int k = 0; k < 4; ++k) shots.push_back(MakeShot(i++, 250));
  return shots;
}

void ExpectPartition(const std::vector<std::vector<int>>& scenes, int n) {
  std::vector<int> seen(static_cast<size_t>(n), 0);
  for (const auto& scene : scenes) {
    for (int s : scene) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, n);
      ++seen[static_cast<size_t>(s)];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(RuiTocTest, PartitionsAllShots) {
  const auto shots = ThreeUnits();
  const auto scenes = RuiTocScenes(shots);
  ExpectPartition(scenes, static_cast<int>(shots.size()));
  EXPECT_GE(scenes.size(), 3u);
}

TEST(RuiTocTest, SeparatesDistinctUnits) {
  const auto shots = ThreeUnits();
  const auto scenes = RuiTocScenes(shots);
  // No scene mixes the first and last unit.
  for (const auto& scene : scenes) {
    bool has_a = false, has_c = false;
    for (int s : scene) {
      has_a |= s < 4;
      has_c |= s >= 8;
    }
    EXPECT_FALSE(has_a && has_c);
  }
}

TEST(RuiTocTest, EmptyInput) { EXPECT_TRUE(RuiTocScenes({}).empty()); }

TEST(LinZhangTest, PartitionsAllShots) {
  const auto shots = ThreeUnits();
  const auto scenes = LinZhangScenes(shots);
  ExpectPartition(scenes, static_cast<int>(shots.size()));
}

TEST(LinZhangTest, SplitsAtHardBoundaries) {
  const auto shots = ThreeUnits();
  const auto scenes = LinZhangScenes(shots);
  EXPECT_EQ(scenes.size(), 3u);
  EXPECT_EQ(scenes[0].size(), 4u);
}

TEST(LinZhangTest, MergesEverythingWhenSimilar) {
  std::vector<shot::Shot> shots;
  for (int i = 0; i < 8; ++i) shots.push_back(MakeShot(i, 40));
  EXPECT_EQ(LinZhangScenes(shots).size(), 1u);
}

TEST(YeungStgTest, PartitionsAllShots) {
  const auto shots = ThreeUnits();
  const auto scenes = YeungStgScenes(shots);
  ExpectPartition(scenes, static_cast<int>(shots.size()));
}

TEST(YeungStgTest, AlternationStaysOneStoryUnit) {
  // A B A B A B: time-constrained clusters span boundaries, so the STG
  // has no cut edge inside the alternation.
  std::vector<shot::Shot> shots;
  for (int i = 0; i < 6; ++i) {
    shots.push_back(MakeShot(i, i % 2 == 0 ? 10 : 50));
  }
  const auto scenes = YeungStgScenes(shots);
  EXPECT_EQ(scenes.size(), 1u);
}

TEST(YeungStgTest, HardChangeSplits) {
  const auto shots = ThreeUnits();
  EXPECT_GE(YeungStgScenes(shots).size(), 3u);
}

}  // namespace
}  // namespace classminer::baselines

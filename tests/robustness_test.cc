// Corruption robustness: hostile bytes must surface as Status errors (or
// decode to harmless content), never crash, hang or scribble memory. This
// matters for a database system whose containers arrive over networks.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "codec/container.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/classminer.h"
#include "core/cmv_pipeline.h"
#include "index/persist.h"
#include "media/draw.h"
#include "media/ppm.h"
#include "shot/detector.h"
#include "skim/skimmer.h"
#include "structure/content_structure.h"
#include "synth/corpus.h"
#include "synth/video_generator.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/salvage.h"
#include "util/serial.h"

namespace classminer {
namespace {

std::vector<uint8_t> EncodedFixture() {
  util::Rng rng(3);
  media::Video video("fuzz", 12.0);
  media::Image base(32, 24);
  media::FillGradient(&base, media::Rgb{120, 60, 180}, media::Rgb{20, 40, 10});
  for (int i = 0; i < 6; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 4, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::CmvFile file = codec::EncodeVideo(video, codec::EncoderOptions());
  file.audio_sample_rate = 8000;
  file.audio_pcm.assign(800, 0.1f);
  return file.Serialize();
}

// Truncation at every granularity: parse must fail cleanly or, if the cut
// lands beyond all parsed fields, succeed.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, NeverCrashes) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  const size_t keep =
      static_cast<size_t>(bytes.size() * GetParam() / 100);
  std::vector<uint8_t> cut(bytes.begin(),
                           bytes.begin() + static_cast<ptrdiff_t>(keep));
  const util::StatusOr<codec::CmvFile> parsed = codec::CmvFile::Parse(cut);
  if (GetParam() < 100) {
    EXPECT_FALSE(parsed.ok());
  } else {
    EXPECT_TRUE(parsed.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Percentages, TruncationSweep,
                         ::testing::Values(0, 1, 5, 25, 50, 75, 99, 100));

TEST(CorruptionTest, RandomByteFlipsParseOrFailCleanly) {
  const std::vector<uint8_t> original = EncodedFixture();
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bytes = original;
    const int flips = rng.UniformInt(1, 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
      bytes[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    util::StatusOr<codec::CmvFile> parsed = codec::CmvFile::Parse(bytes);
    if (!parsed.ok()) continue;  // clean rejection
    // Parse survived: decoding must also either fail cleanly or produce a
    // video of the declared (possibly corrupted) dimensions.
    if (parsed->width <= 0 || parsed->height <= 0 ||
        parsed->width > 4096 || parsed->height > 4096) {
      continue;  // DecodeVideo guards dimensions itself; skip absurd sizes
    }
    util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->frame_count(), parsed->frame_count());
    }
  }
  SUCCEED();
}

TEST(CorruptionTest, DatabaseTruncationSweep) {
  index::VideoDatabase db;
  structure::ContentStructure cs;
  shot::Shot s;
  s.index = 0;
  s.end_frame = 29;
  s.rep_frame = 9;
  cs.shots.push_back(s);
  db.AddVideo("fuzz", std::move(cs), {});
  const std::vector<uint8_t> bytes = index::SerializeDatabase(db);
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_FALSE(index::ParseDatabase(cut).ok()) << "kept " << keep;
  }
  EXPECT_TRUE(index::ParseDatabase(bytes).ok());
}

TEST(CorruptionTest, PpmHeaderVariants) {
  const std::string dir = ::testing::TempDir();
  // Comment lines and extra whitespace are legal.
  const std::string ok = "P6\n# comment\n 2 1\n255\n\x01\x02\x03\x04\x05\x06";
  ASSERT_TRUE(util::WriteFile(dir + "/ok.ppm",
                              std::vector<uint8_t>(ok.begin(), ok.end()))
                  .ok());
  EXPECT_TRUE(media::ReadPpm(dir + "/ok.ppm").ok());

  for (const std::string& bad :
       {std::string("P5\n2 1\n255\n......"),     // wrong magic
        std::string("P6\n2 1\n65535\n......"),   // unsupported maxval
        std::string("P6\n2 1\n255\n\x01"),        // truncated pixels
        std::string("P6\nx y\n255\n......")}) {  // non-numeric dims
    ASSERT_TRUE(util::WriteFile(dir + "/bad.ppm",
                                std::vector<uint8_t>(bad.begin(), bad.end()))
                    .ok());
    EXPECT_FALSE(media::ReadPpm(dir + "/bad.ppm").ok()) << bad.substr(0, 8);
  }
}

TEST(CorruptionTest, EmptyInputsEverywhere) {
  EXPECT_FALSE(codec::CmvFile::Parse({}).ok());
  EXPECT_FALSE(index::ParseDatabase({}).ok());
  const media::Video empty_video;
  EXPECT_TRUE(shot::DetectShots(empty_video).empty());
  EXPECT_TRUE(structure::MineVideoStructure({}).shots.empty());
}

// ---------------------------------------------------------------------------
// Salvage parsing: the best-effort path must recover the valid prefix of a
// damaged container instead of rejecting the whole file.

// Byte offset where frame record `index` starts in a serialised CmvFile.
size_t FrameRecordOffset(const codec::CmvFile& file, size_t index) {
  // magic + name (u32 length prefix + bytes) + width + height + fps +
  // quality + gop_size + frame_count.
  size_t offset = 4 + 4 + file.name.size() + 4 + 4 + 8 + 4 + 4 + 4;
  for (size_t i = 0; i < index; ++i) {
    // type + size + payload (+ CRC-32 on checksummed CMV2 records).
    offset += 1 + 4 + file.frames[i].payload.size() +
              (file.record_checksums ? 4 : 0);
  }
  return offset;
}

TEST(SalvageParseTest, PristineInputIsNotFlaggedSalvaged) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  util::SalvageReport report;
  const util::StatusOr<codec::CmvFile> parsed =
      codec::CmvFile::ParseBestEffort(bytes, &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(report.salvaged);
  EXPECT_EQ(report.ToString(), "");
  const util::StatusOr<codec::CmvFile> strict = codec::CmvFile::Parse(bytes);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(parsed->frame_count(), strict->frame_count());
  EXPECT_FALSE(parsed->audio_pcm.empty());
}

TEST(SalvageParseTest, RecordBoundaryTruncationKeepsExactPrefix) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  const codec::CmvFile pristine = *codec::CmvFile::Parse(bytes);
  const int total = pristine.frame_count();
  for (int keep = 1; keep < total; ++keep) {
    const size_t cut = FrameRecordOffset(pristine, static_cast<size_t>(keep));
    std::vector<uint8_t> damaged(bytes.begin(),
                                 bytes.begin() + static_cast<ptrdiff_t>(cut));
    util::SalvageReport report;
    const util::StatusOr<codec::CmvFile> parsed =
        codec::CmvFile::ParseBestEffort(damaged, &report);
    ASSERT_TRUE(parsed.ok()) << "kept " << keep << " records";
    EXPECT_EQ(parsed->frame_count(), keep);
    EXPECT_TRUE(report.salvaged);
    EXPECT_EQ(report.items_recovered, keep);
    EXPECT_EQ(report.items_dropped, total - keep);
    // Nothing past the torn record is framed, so audio is unrecoverable and
    // the seek index must be re-derived from the surviving records.
    EXPECT_TRUE(report.audio_dropped);
    EXPECT_TRUE(report.index_rebuilt);
    EXPECT_TRUE(parsed->audio_pcm.empty());
    // The recovered prefix is fully decodable.
    const util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
    ASSERT_TRUE(decoded.ok()) << "kept " << keep << " records";
    EXPECT_EQ(decoded->frame_count(), keep);
  }
}

TEST(SalvageParseTest, ByteGranularityTruncationNeverCrashes) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    util::SalvageReport report;
    const util::StatusOr<codec::CmvFile> parsed =
        codec::CmvFile::ParseBestEffort(cut, &report);
    if (!parsed.ok()) continue;  // header torn or no GOP survives: clean fail
    EXPECT_GE(parsed->frame_count(), 1) << "kept " << keep;
    // Salvage only keeps whole records, so whatever survived decodes.
    const util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
    ASSERT_TRUE(decoded.ok()) << "kept " << keep;
    EXPECT_EQ(decoded->frame_count(), parsed->frame_count());
  }
}

TEST(SalvageParseTest, MidStreamCorruptionResynchronisesOntoTrailer) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  const codec::CmvFile pristine = *codec::CmvFile::Parse(bytes);
  ASSERT_GE(pristine.frame_count(), 4);
  std::vector<uint8_t> damaged = bytes;
  // Stamp an impossible frame type onto record 3: a structural tear in the
  // middle of the stream, with intact bytes on both sides.
  damaged[FrameRecordOffset(pristine, 3)] = 0xFF;
  EXPECT_FALSE(codec::CmvFile::Parse(damaged).ok());
  util::SalvageReport report;
  const util::StatusOr<codec::CmvFile> parsed =
      codec::CmvFile::ParseBestEffort(damaged, &report);
  ASSERT_TRUE(parsed.ok());
  // Records 3..5 are P-frames (one GOP fixture), so no record behind the
  // tear can anchor a decode — but the scan resynchronises onto the
  // trailer, so the audio track survives the damage.
  EXPECT_EQ(parsed->frame_count(), 3);
  EXPECT_TRUE(report.salvaged);
  EXPECT_FALSE(report.notes.empty());
  EXPECT_GT(report.bytes_dropped, 0u);
  EXPECT_EQ(report.resync_points, 1);
  EXPECT_FALSE(report.audio_dropped);
  EXPECT_EQ(parsed->audio_pcm.size(), pristine.audio_pcm.size());
  EXPECT_NE(report.ToString(), "");
}

TEST(SalvageParseTest, MidStreamTearResynchronisesOntoNextIFrame) {
  // Multi-GOP fixture: gop_size 2 over 6 frames gives I P I P I P, so a
  // tear in GOP 0 leaves checksum-confirmed I-frames behind it.
  util::Rng rng(31);
  media::Video video("resync", 12.0);
  media::Image base(32, 24);
  media::FillGradient(&base, media::Rgb{90, 30, 150}, media::Rgb{15, 25, 5});
  for (int i = 0; i < 6; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::EncoderOptions options;
  options.gop_size = 2;
  codec::CmvFile file = codec::EncodeVideo(video, options);
  file.audio_sample_rate = 8000;
  file.audio_pcm.assign(400, 0.25f);
  const std::vector<uint8_t> bytes = file.Serialize();
  ASSERT_TRUE(file.record_checksums);

  // Corrupt the payload of record 1 (a P-frame): its checksum fails, and
  // the suffix from the next I-frame (record 2) onward is recoverable.
  std::vector<uint8_t> damaged = bytes;
  damaged[FrameRecordOffset(file, 1) + 5 + 2] ^= 0xFF;
  ASSERT_FALSE(codec::CmvFile::Parse(damaged).ok());

  util::SalvageReport report;
  const util::StatusOr<codec::CmvFile> parsed =
      codec::CmvFile::ParseBestEffort(damaged, &report);
  ASSERT_TRUE(parsed.ok());
  // Only the torn record is lost: frames 0, 2, 3, 4, 5 survive.
  EXPECT_EQ(parsed->frame_count(), 5);
  EXPECT_EQ(parsed->frames[1].type, codec::FrameType::kIntra);
  EXPECT_EQ(report.items_dropped, 1);
  EXPECT_EQ(report.resync_points, 1);
  EXPECT_GT(report.bytes_dropped, 0u);
  // The trailer was reached through normal parsing after the resync, so
  // the audio track survives; the seek index is re-derived.
  EXPECT_EQ(parsed->audio_pcm.size(), file.audio_pcm.size());
  EXPECT_TRUE(report.index_rebuilt);
  EXPECT_EQ(parsed->gop_count(), 3);
  // Everything recovered decodes (the suffix re-anchors on its I-frame).
  const util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frame_count(), 5);
}

TEST(SalvageParseTest, LegacyCmv1FilesRoundTripByteStable) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  codec::CmvFile downgraded = *codec::CmvFile::Parse(bytes);
  downgraded.record_checksums = false;
  const std::vector<uint8_t> v1 = downgraded.Serialize();
  const codec::CmvFile reloaded = *codec::CmvFile::Parse(v1);
  EXPECT_FALSE(reloaded.record_checksums);
  // A CMV1-era file (GIDX section included) re-serialises bit-identically:
  // the parser remembers the generation instead of upgrading in place.
  EXPECT_EQ(reloaded.Serialize(), v1);
  // And a checksummed container round-trips byte-stable too.
  EXPECT_EQ(codec::CmvFile::Parse(bytes)->Serialize(), bytes);
}

TEST(SalvageParseTest, LegacyCmv1TearKeepsPrefixOnly) {
  // CMV1 records carry no checksum, so no scan can confirm a sync point:
  // a mid-stream tear still degrades to prefix-only salvage.
  const std::vector<uint8_t> bytes = EncodedFixture();
  codec::CmvFile legacy = *codec::CmvFile::Parse(bytes);
  legacy.record_checksums = false;
  const std::vector<uint8_t> v1 = legacy.Serialize();
  const codec::CmvFile pristine = *codec::CmvFile::Parse(v1);
  ASSERT_FALSE(pristine.record_checksums);
  std::vector<uint8_t> damaged = v1;
  damaged[FrameRecordOffset(pristine, 3)] = 0xFF;
  util::SalvageReport report;
  const util::StatusOr<codec::CmvFile> parsed =
      codec::CmvFile::ParseBestEffort(damaged, &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->frame_count(), 3);
  EXPECT_EQ(report.resync_points, 0);
  EXPECT_TRUE(report.audio_dropped);
  EXPECT_TRUE(parsed->audio_pcm.empty());
}

TEST(SalvageParseTest, LeadingPredictedFramesAreDropped) {
  util::Rng rng(9);
  media::Video video("pdrop", 12.0);
  media::Image base(32, 24);
  media::FillGradient(&base, media::Rgb{80, 80, 80}, media::Rgb{5, 5, 5});
  for (int i = 0; i < 6; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 2, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::EncoderOptions options;
  options.gop_size = 3;
  const codec::CmvFile file = codec::EncodeVideo(video, options);
  std::vector<uint8_t> bytes = file.Serialize();
  // Re-type the opening I-frame as predicted: its GOP has no anchor left.
  bytes[FrameRecordOffset(file, 0)] =
      static_cast<uint8_t>(codec::FrameType::kPredicted);
  util::SalvageReport report;
  const util::StatusOr<codec::CmvFile> parsed =
      codec::CmvFile::ParseBestEffort(bytes, &report);
  ASSERT_TRUE(parsed.ok());
  // The first decodable GOP starts at frame 3; the leading run is dropped.
  EXPECT_EQ(parsed->frame_count(), 3);
  EXPECT_EQ(parsed->frames[0].type, codec::FrameType::kIntra);
  EXPECT_TRUE(report.salvaged);
  const util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frame_count(), 3);
}

TEST(SalvageParseTest, AllFramesLostIsACleanFailure) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  const codec::CmvFile pristine = *codec::CmvFile::Parse(bytes);
  // Cut inside the very first record: no decodable GOP can survive.
  const size_t cut = FrameRecordOffset(pristine, 0) + 2;
  std::vector<uint8_t> damaged(bytes.begin(),
                               bytes.begin() + static_cast<ptrdiff_t>(cut));
  util::SalvageReport report;
  EXPECT_FALSE(codec::CmvFile::ParseBestEffort(damaged, &report).ok());
}

TEST(SalvageParseTest, BitFlipCorpusNeverCrashes) {
  const std::vector<uint8_t> original = EncodedFixture();
  util::Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> bytes = original;
    const int flips = rng.UniformInt(1, 6);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(1 << rng.UniformInt(0, 7));
    }
    util::SalvageReport report;
    const util::StatusOr<codec::CmvFile> parsed =
        codec::CmvFile::ParseBestEffort(bytes, &report);
    if (!parsed.ok()) continue;  // header or every GOP lost: clean rejection
    EXPECT_GE(parsed->frame_count(), 0);
    if (parsed->width <= 0 || parsed->height <= 0 || parsed->width > 4096 ||
        parsed->height > 4096) {
      continue;  // flipped dimensions; DecodeVideo guards these itself
    }
    // The salvage decode substitutes held frames for corrupt payloads, so
    // it must keep the frame count aligned whenever it succeeds at all.
    util::SalvageReport decode_report;
    const util::StatusOr<std::vector<media::GrayImage>> dc =
        codec::DecodeDcImagesSalvage(*parsed, &decode_report, nullptr);
    if (dc.ok()) {
      EXPECT_EQ(static_cast<int>(dc->size()), parsed->frame_count());
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Degraded-mode mining: damage or injected stage failures must still yield
// an indexable (shots + groups + scenes) result, flagged degraded.

synth::GeneratedVideo MiningFixture() {
  synth::VideoScript script;
  script.name = "robustness";
  script.seed = 21;
  script.width = 64;
  script.height = 48;
  script.scenes.push_back(
      {synth::SceneKind::kPresentation, 4, 0, 0, -1, 1.0});
  script.scenes.push_back({synth::SceneKind::kDialog, 4, 1, 0, 1, 1.0});
  return synth::GenerateVideo(script);
}

core::MiningOptions DegradedOptions() {
  core::MiningOptions options;
  options.failure_policy = core::FailurePolicy::kDegraded;
  options.thread_count = 2;
  return options;
}

// Asserts the essential chain of a degraded result is intact and usable.
void ExpectIndexable(const core::MiningResult& result) {
  EXPECT_FALSE(result.structure.shots.empty());
  EXPECT_FALSE(result.structure.groups.empty());
  EXPECT_FALSE(result.structure.scenes.empty());
}

class DegradedMiningTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FailPoint::DisarmAll(); }
  void TearDown() override { util::FailPoint::DisarmAll(); }
};

TEST_F(DegradedMiningTest, TruncatedTailStillMinesAndIndexes) {
  const synth::GeneratedVideo generated = MiningFixture();
  const codec::CmvFile file = core::PackGeneratedVideo(generated);
  std::vector<uint8_t> bytes = file.Serialize();
  // Tear the container mid-way through a frame record two thirds in (the
  // audio and index sections behind it become unreachable too).
  bytes.resize(FrameRecordOffset(file, file.frames.size() * 2 / 3) + 2);
  ASSERT_FALSE(codec::CmvFile::Parse(bytes).ok());

  util::SalvageReport parse_report;
  const util::StatusOr<codec::CmvFile> salvaged =
      codec::CmvFile::ParseBestEffort(bytes, &parse_report);
  ASSERT_TRUE(salvaged.ok());
  ASSERT_TRUE(parse_report.salvaged);
  ASSERT_LT(salvaged->frame_count(), file.frame_count());

  util::StatusOr<core::MiningResult> mined =
      core::MineCmvFileFast(*salvaged, DegradedOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  ExpectIndexable(*mined);

  // Fold the load-time salvage into the result the way ingest does, then
  // index it: the entry lands flagged degraded.
  mined->salvage.Merge(parse_report);
  mined->degraded = mined->degraded || parse_report.salvaged;
  index::VideoDatabase db;
  db.AddVideo("torn", std::move(mined->structure), std::move(mined->events),
              mined->degraded);
  EXPECT_EQ(db.video_count(), 1);
  EXPECT_EQ(db.DegradedCount(), 1);
  EXPECT_GT(db.TotalShotCount(), 0u);

  // The access layer still works on the degraded entry: all four skim
  // levels build, each a non-empty subset of the salvaged shots.
  const skim::ScalableSkim skim(&db.video(0).structure);
  for (int level = 1; level <= skim::kSkimLevels; ++level) {
    EXPECT_FALSE(skim.track(level).shot_indices.empty()) << "level " << level;
    EXPECT_LE(skim.track(level).shot_indices.size(),
              db.video(0).structure.shots.size());
  }
  EXPECT_GT(skim.Fcr(skim::kSkimLevels), 0.0);
}

TEST_F(DegradedMiningTest, CorruptMidGopStillMinesDegraded) {
  const synth::GeneratedVideo generated = MiningFixture();
  const codec::CmvFile file = core::PackGeneratedVideo(generated);
  // One GOP decode fails with unrecoverable damage mid-container.
  util::FailPoint::Scoped scoped(
      "codec.gop_reader.decode_gop",
      util::FailPoint::Spec::Once(util::StatusCode::kDataLoss));
  const util::StatusOr<core::MiningResult> mined =
      core::MineCmvFileFast(file, DegradedOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  ExpectIndexable(*mined);
  EXPECT_TRUE(mined->degraded);
  EXPECT_TRUE(mined->salvage.salvaged);
}

TEST_F(DegradedMiningTest, CorruptMidGopFailsStrictMode) {
  const synth::GeneratedVideo generated = MiningFixture();
  const codec::CmvFile file = core::PackGeneratedVideo(generated);
  util::FailPoint::Scoped scoped(
      "codec.gop_reader.decode_gop",
      util::FailPoint::Spec::Once(util::StatusCode::kDataLoss));
  core::MiningOptions options = DegradedOptions();
  options.failure_policy = core::FailurePolicy::kStrict;
  EXPECT_FALSE(core::MineCmvFileFast(file, options).ok());
}

TEST_F(DegradedMiningTest, AudioStageFailureDegradesButKeepsStructure) {
  const synth::GeneratedVideo generated = MiningFixture();
  util::FailPoint::Scoped scoped(
      "core.stage.audio",
      util::FailPoint::Spec::Always(util::StatusCode::kInternal));
  const util::StatusOr<core::MiningResult> mined = core::MineVideo(
      generated.video, generated.audio, DegradedOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  ExpectIndexable(*mined);
  EXPECT_TRUE(mined->degraded);
  ASSERT_EQ(mined->stage_failures.size(), 1u);
  EXPECT_EQ(mined->stage_failures[0].stage, "audio");
  EXPECT_EQ(mined->stage_failures[0].status.code(),
            util::StatusCode::kInternal);
  // Dependents saw consistent defaults sized to the shots.
  EXPECT_EQ(mined->shot_audio.size(), mined->structure.shots.size());
}

TEST_F(DegradedMiningTest, AudioStageFailureFailsStrictMode) {
  const synth::GeneratedVideo generated = MiningFixture();
  util::FailPoint::Scoped scoped(
      "core.stage.audio",
      util::FailPoint::Spec::Always(util::StatusCode::kInternal));
  core::MiningOptions options;
  options.failure_policy = core::FailurePolicy::kStrict;
  EXPECT_FALSE(
      core::MineVideo(generated.video, generated.audio, options).ok());
}

TEST_F(DegradedMiningTest, MultipleOptionalFailuresCollectInOrder) {
  const synth::GeneratedVideo generated = MiningFixture();
  util::FailPoint::Scoped audio(
      "core.stage.audio",
      util::FailPoint::Spec::Always(util::StatusCode::kInternal));
  util::FailPoint::Scoped cues(
      "core.stage.cues",
      util::FailPoint::Spec::Always(util::StatusCode::kUnavailable));
  const util::StatusOr<core::MiningResult> mined = core::MineVideo(
      generated.video, generated.audio, DegradedOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  ExpectIndexable(*mined);
  // Declaration order regardless of DAG completion order on the pool.
  ASSERT_EQ(mined->stage_failures.size(), 2u);
  EXPECT_EQ(mined->stage_failures[0].stage, "audio");
  EXPECT_EQ(mined->stage_failures[1].stage, "cues");
}

TEST_F(DegradedMiningTest, BatchAggregatesDegradationAndSalvage) {
  const synth::GeneratedVideo generated = MiningFixture();
  util::FailPoint::Scoped scoped(
      "core.stage.audio",
      util::FailPoint::Spec::Always(util::StatusCode::kInternal));
  const std::vector<core::MiningInput> inputs = {
      {&generated.video, &generated.audio},
      {&generated.video, &generated.audio},
      {nullptr, nullptr},  // fails outright with kInvalidArgument
  };
  const core::BatchMiningResult batch =
      core::MineVideosParallelWithStatus(inputs, DegradedOptions(), 2);
  EXPECT_EQ(batch.FailedCount(), 1);
  EXPECT_EQ(batch.DegradedCount(), 2);
  EXPECT_FALSE(batch.FirstError().ok());
}

// ---------------------------------------------------------------------------
// Database persistence under damage and across format versions.

index::VideoDatabase ThreeVideoDatabase() {
  index::VideoDatabase db;
  for (int v = 0; v < 3; ++v) {
    structure::ContentStructure cs;
    shot::Shot s;
    s.index = 0;
    s.end_frame = 29;
    s.rep_frame = 9;
    cs.shots.push_back(s);
    db.AddVideo("video" + std::to_string(v), std::move(cs), {}, v == 1);
  }
  return db;
}

TEST(DatabaseSalvageTest, TornEntryKeepsValidPrefix) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  const std::vector<uint8_t> bytes = index::SerializeDatabase(db);
  // Tear the file inside the second entry (entries dominate the file, so
  // cutting at 40% lands past the header and first entry).
  std::vector<uint8_t> cut(
      bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(bytes.size() * 2 / 5));
  ASSERT_FALSE(index::ParseDatabase(cut).ok());
  util::SalvageReport report;
  const util::StatusOr<index::VideoDatabase> salvaged =
      index::ParseDatabaseSalvage(cut, &report);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_EQ(salvaged->video_count(), 1);
  EXPECT_EQ(salvaged->video(0).name, "video0");
  EXPECT_EQ(report.items_recovered, 1);
  EXPECT_EQ(report.items_dropped, 2);
  EXPECT_FALSE(report.notes.empty());
}

TEST(DatabaseSalvageTest, DamagedHeaderIsUnrecoverable) {
  const std::vector<uint8_t> bytes =
      index::SerializeDatabase(ThreeVideoDatabase());
  std::vector<uint8_t> damaged = bytes;
  damaged[0] ^= 0xFF;  // magic
  util::SalvageReport report;
  EXPECT_FALSE(index::ParseDatabaseSalvage(damaged, &report).ok());
  EXPECT_FALSE(index::ParseDatabaseSalvage({}, &report).ok());
}

TEST(DatabaseSalvageTest, ErrorsCarrySectionAndOffset) {
  const std::vector<uint8_t> bytes =
      index::SerializeDatabase(ThreeVideoDatabase());
  std::vector<uint8_t> cut(
      bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(bytes.size() * 2 / 5));
  const util::Status status = index::ParseDatabase(cut).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("section 'videos[1]'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("byte offset"), std::string::npos)
      << status.message();
}

// Reconstructs a legacy CMDB file (version 1 or 2) from freshly
// serialised v3 bytes: the version field is stamped back, every entry's
// 12-byte frame (magic + body size + CRC) is stripped, and for v1 the
// trailing per-body degraded byte goes too.
std::vector<uint8_t> StripToLegacy(const std::vector<uint8_t>& v3,
                                   uint32_t version) {
  auto read_u32 = [&v3](size_t pos) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(v3[pos + i]) << (8 * i);
    return v;
  };
  std::vector<uint8_t> out(v3.begin(), v3.begin() + 12);
  out[4] = static_cast<uint8_t>(version);
  const uint32_t videos = read_u32(8);
  size_t pos = 12;
  for (uint32_t i = 0; i < videos; ++i) {
    const uint32_t body_size = read_u32(pos + 4);
    const size_t body = pos + 12;
    const size_t keep = version >= 2 ? body_size : body_size - 1;
    out.insert(out.end(), v3.begin() + static_cast<ptrdiff_t>(body),
               v3.begin() + static_cast<ptrdiff_t>(body + keep));
    pos = body + body_size;
  }
  return out;
}

TEST(DatabaseSalvageTest, TornEntryResynchronisesOntoNextEntry) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  std::vector<uint8_t> bytes = index::SerializeDatabase(db);
  // Flip one byte inside the second entry's body: its checksum fails, and
  // the scan must recover video2 behind the damage.
  const size_t file_mid = bytes.size() * 2 / 5;
  std::vector<uint8_t> damaged = bytes;
  damaged[file_mid] ^= 0xFF;
  ASSERT_FALSE(index::ParseDatabase(damaged).ok());
  util::SalvageReport report;
  const util::StatusOr<index::VideoDatabase> salvaged =
      index::ParseDatabaseSalvage(damaged, &report);
  ASSERT_TRUE(salvaged.ok());
  ASSERT_EQ(salvaged->video_count(), 2);
  EXPECT_EQ(salvaged->video(0).name, "video0");
  EXPECT_EQ(salvaged->video(1).name, "video2");
  // The recovered video2 keeps its per-entry state (it was not degraded).
  EXPECT_FALSE(salvaged->video(1).degraded);
  EXPECT_EQ(report.items_dropped, 1);
  EXPECT_EQ(report.resync_points, 1);
  EXPECT_GT(report.bytes_dropped, 0u);
}

TEST(DatabaseSalvageTest, ChecksumMismatchNamesTheDamage) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  std::vector<uint8_t> damaged = index::SerializeDatabase(db);
  damaged[damaged.size() * 2 / 5] ^= 0xFF;
  const util::Status status = index::ParseDatabase(damaged).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.message();
}

TEST(DatabaseVersionTest, DegradedFlagRoundTripsInV2) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  const util::StatusOr<index::VideoDatabase> loaded =
      index::ParseDatabase(index::SerializeDatabase(db));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->video_count(), 3);
  EXPECT_FALSE(loaded->video(0).degraded);
  EXPECT_TRUE(loaded->video(1).degraded);
  EXPECT_FALSE(loaded->video(2).degraded);
  EXPECT_EQ(loaded->DegradedCount(), 1);
}

TEST(DatabaseVersionTest, V1FilesWithoutDegradedFlagStillLoad) {
  index::VideoDatabase db;
  structure::ContentStructure cs;
  shot::Shot s;
  s.index = 0;
  s.end_frame = 9;
  cs.shots.push_back(s);
  db.AddVideo("legacy", std::move(cs), {}, true);
  const std::vector<uint8_t> v1 =
      StripToLegacy(index::SerializeDatabase(db), 1);
  const util::StatusOr<index::VideoDatabase> loaded =
      index::ParseDatabase(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded->video_count(), 1);
  EXPECT_EQ(loaded->video(0).name, "legacy");
  // v1 carries no flag; entries load as non-degraded.
  EXPECT_FALSE(loaded->video(0).degraded);
}

TEST(DatabaseVersionTest, V2FilesWithoutEntryFramesStillLoad) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  const std::vector<uint8_t> v2 =
      StripToLegacy(index::SerializeDatabase(db), 2);
  const util::StatusOr<index::VideoDatabase> loaded =
      index::ParseDatabase(v2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded->video_count(), 3);
  // v2 keeps the per-video degraded flag even without entry framing.
  EXPECT_TRUE(loaded->video(1).degraded);
  EXPECT_EQ(loaded->DegradedCount(), 1);
}

TEST(DatabaseVersionTest, V2TornEntryStillSalvagesPrefixOnly) {
  const index::VideoDatabase db = ThreeVideoDatabase();
  const std::vector<uint8_t> v2 =
      StripToLegacy(index::SerializeDatabase(db), 2);
  std::vector<uint8_t> cut(
      v2.begin(), v2.begin() + static_cast<ptrdiff_t>(v2.size() * 2 / 5));
  util::SalvageReport report;
  const util::StatusOr<index::VideoDatabase> salvaged =
      index::ParseDatabaseSalvage(cut, &report);
  ASSERT_TRUE(salvaged.ok());
  // Unframed legacy entries cannot be resynchronised past a tear.
  EXPECT_EQ(salvaged->video_count(), 1);
  EXPECT_EQ(report.resync_points, 0);
  EXPECT_EQ(report.items_dropped, 2);
}

TEST(DatabaseVersionTest, FutureVersionIsRejectedWithClearMessage) {
  std::vector<uint8_t> bytes =
      index::SerializeDatabase(ThreeVideoDatabase());
  bytes[4] = 9;
  const util::Status status = index::ParseDatabase(bytes).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unsupported CMDB version 9"),
            std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace classminer

// Corruption robustness: hostile bytes must surface as Status errors (or
// decode to harmless content), never crash, hang or scribble memory. This
// matters for a database system whose containers arrive over networks.

#include <gtest/gtest.h>

#include "codec/container.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "index/persist.h"
#include "media/draw.h"
#include "media/ppm.h"
#include "shot/detector.h"
#include "structure/content_structure.h"
#include "synth/corpus.h"
#include "util/rng.h"
#include "util/serial.h"

namespace classminer {
namespace {

std::vector<uint8_t> EncodedFixture() {
  util::Rng rng(3);
  media::Video video("fuzz", 12.0);
  media::Image base(32, 24);
  media::FillGradient(&base, media::Rgb{120, 60, 180}, media::Rgb{20, 40, 10});
  for (int i = 0; i < 6; ++i) {
    media::Image f = base;
    media::AddNoise(&f, 4, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::CmvFile file = codec::EncodeVideo(video, codec::EncoderOptions());
  file.audio_sample_rate = 8000;
  file.audio_pcm.assign(800, 0.1f);
  return file.Serialize();
}

// Truncation at every granularity: parse must fail cleanly or, if the cut
// lands beyond all parsed fields, succeed.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, NeverCrashes) {
  const std::vector<uint8_t> bytes = EncodedFixture();
  const size_t keep =
      static_cast<size_t>(bytes.size() * GetParam() / 100);
  std::vector<uint8_t> cut(bytes.begin(),
                           bytes.begin() + static_cast<ptrdiff_t>(keep));
  const util::StatusOr<codec::CmvFile> parsed = codec::CmvFile::Parse(cut);
  if (GetParam() < 100) {
    EXPECT_FALSE(parsed.ok());
  } else {
    EXPECT_TRUE(parsed.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Percentages, TruncationSweep,
                         ::testing::Values(0, 1, 5, 25, 50, 75, 99, 100));

TEST(CorruptionTest, RandomByteFlipsParseOrFailCleanly) {
  const std::vector<uint8_t> original = EncodedFixture();
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bytes = original;
    const int flips = rng.UniformInt(1, 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
      bytes[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    util::StatusOr<codec::CmvFile> parsed = codec::CmvFile::Parse(bytes);
    if (!parsed.ok()) continue;  // clean rejection
    // Parse survived: decoding must also either fail cleanly or produce a
    // video of the declared (possibly corrupted) dimensions.
    if (parsed->width <= 0 || parsed->height <= 0 ||
        parsed->width > 4096 || parsed->height > 4096) {
      continue;  // DecodeVideo guards dimensions itself; skip absurd sizes
    }
    util::StatusOr<media::Video> decoded = codec::DecodeVideo(*parsed);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->frame_count(), parsed->frame_count());
    }
  }
  SUCCEED();
}

TEST(CorruptionTest, DatabaseTruncationSweep) {
  index::VideoDatabase db;
  structure::ContentStructure cs;
  shot::Shot s;
  s.index = 0;
  s.end_frame = 29;
  s.rep_frame = 9;
  cs.shots.push_back(s);
  db.AddVideo("fuzz", std::move(cs), {});
  const std::vector<uint8_t> bytes = index::SerializeDatabase(db);
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_FALSE(index::ParseDatabase(cut).ok()) << "kept " << keep;
  }
  EXPECT_TRUE(index::ParseDatabase(bytes).ok());
}

TEST(CorruptionTest, PpmHeaderVariants) {
  const std::string dir = ::testing::TempDir();
  // Comment lines and extra whitespace are legal.
  const std::string ok = "P6\n# comment\n 2 1\n255\n\x01\x02\x03\x04\x05\x06";
  ASSERT_TRUE(util::WriteFile(dir + "/ok.ppm",
                              std::vector<uint8_t>(ok.begin(), ok.end()))
                  .ok());
  EXPECT_TRUE(media::ReadPpm(dir + "/ok.ppm").ok());

  for (const std::string& bad :
       {std::string("P5\n2 1\n255\n......"),     // wrong magic
        std::string("P6\n2 1\n65535\n......"),   // unsupported maxval
        std::string("P6\n2 1\n255\n\x01"),        // truncated pixels
        std::string("P6\nx y\n255\n......")}) {  // non-numeric dims
    ASSERT_TRUE(util::WriteFile(dir + "/bad.ppm",
                                std::vector<uint8_t>(bad.begin(), bad.end()))
                    .ok());
    EXPECT_FALSE(media::ReadPpm(dir + "/bad.ppm").ok()) << bad.substr(0, 8);
  }
}

TEST(CorruptionTest, EmptyInputsEverywhere) {
  EXPECT_FALSE(codec::CmvFile::Parse({}).ok());
  EXPECT_FALSE(index::ParseDatabase({}).ok());
  const media::Video empty_video;
  EXPECT_TRUE(shot::DetectShots(empty_video).empty());
  EXPECT_TRUE(structure::MineVideoStructure({}).shots.empty());
}

}  // namespace
}  // namespace classminer

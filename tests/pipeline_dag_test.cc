// StageDag runtime contract: declaration-time validation, dependency
// ordering under concurrent execution, cancellation and error propagation,
// the batch scheduler's no-clamp guarantee, and bit-identical parallel
// index construction.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/classminer.h"
#include "core/pipeline_dag.h"
#include "index/concept.h"
#include "index/database.h"
#include "index/hier_index.h"
#include "synth/corpus.h"
#include "util/exec_context.h"
#include "util/threadpool.h"

namespace classminer {
namespace {

core::StageDag::StageFn Noop() {
  return [](util::StageMetrics*) {};
}

TEST(StageDagTest, AddRejectsUnknownDependency) {
  core::StageDag dag;
  ASSERT_TRUE(dag.Add("a", {}, Noop()).ok());
  const util::Status status = dag.Add("b", {"missing"}, Noop());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  // Deps must be declared first, so forward references (and therefore
  // cycles) are inexpressible.
  EXPECT_EQ(dag.size(), 1);
}

TEST(StageDagTest, AddRejectsDuplicateAndEmptyNames) {
  core::StageDag dag;
  ASSERT_TRUE(dag.Add("a", {}, Noop()).ok());
  EXPECT_EQ(dag.Add("a", {}, Noop()).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(dag.Add("", {}, Noop()).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(StageDagTest, DependenciesOfReportsDeclaredEdges) {
  core::StageDag dag;
  ASSERT_TRUE(dag.Add("shot", {}, Noop()).ok());
  ASSERT_TRUE(dag.Add("group", {"shot"}, Noop()).ok());
  ASSERT_TRUE(dag.Add("events", {"shot", "group"}, Noop()).ok());
  EXPECT_TRUE(dag.DependenciesOf("shot").empty());
  EXPECT_EQ(dag.DependenciesOf("events"),
            (std::vector<std::string>{"shot", "group"}));
  EXPECT_TRUE(dag.DependenciesOf("nonexistent").empty());
}

// Stress: a layered fan-out/fan-in graph run repeatedly on a contended
// pool. Every stage asserts all of its dependencies finished before its
// own body started — the core scheduling invariant.
TEST(StageDagTest, DependencyOrderingStress) {
  constexpr int kLayers = 6;
  constexpr int kWidth = 4;
  constexpr int kIterations = 25;
  util::ThreadPool pool(8);
  for (int iter = 0; iter < kIterations; ++iter) {
    core::StageDag dag;
    std::vector<std::atomic<bool>> done(kLayers * kWidth);
    std::atomic<int> violations{0};
    for (int layer = 0; layer < kLayers; ++layer) {
      for (int w = 0; w < kWidth; ++w) {
        const int id = layer * kWidth + w;
        std::vector<std::string> deps;
        if (layer > 0) {
          // Full bipartite edges between consecutive layers: a stage can
          // start only after every stage of the previous layer.
          for (int p = 0; p < kWidth; ++p) {
            deps.push_back(std::to_string((layer - 1) * kWidth + p));
          }
        }
        ASSERT_TRUE(dag.Add(std::to_string(id), deps,
                            [&done, &violations, id, layer,
                             kWidth_ = kWidth](util::StageMetrics*) {
                              if (layer > 0) {
                                for (int p = 0; p < kWidth_; ++p) {
                                  const int dep = (layer - 1) * kWidth_ + p;
                                  if (!done[static_cast<size_t>(dep)].load()) {
                                    violations.fetch_add(1);
                                  }
                                }
                              }
                              done[static_cast<size_t>(id)].store(true);
                            })
                        .ok());
      }
    }
    const util::ExecutionContext ctx(&pool);
    ASSERT_TRUE(dag.Run(ctx).ok());
    EXPECT_EQ(violations.load(), 0) << "iteration " << iter;
    for (const auto& d : done) EXPECT_TRUE(d.load());
  }
}

// A stage cancelling mid-run: already-finished stages keep their metrics
// rows, downstream stages are skipped (no rows), and Run reports
// kCancelled after draining.
TEST(StageDagTest, CancellationMidStageSkipsDependents) {
  for (const bool use_pool : {false, true}) {
    util::ThreadPool pool(4);
    util::CancellationToken cancel;
    util::PipelineMetrics metrics;
    util::StatusSink sink;
    const util::ExecutionContext ctx(use_pool ? &pool : nullptr, &metrics,
                                     &cancel, &sink);
    core::StageDag dag;
    std::atomic<bool> c_ran{false};
    ASSERT_TRUE(dag.Add("a", {}, Noop()).ok());
    ASSERT_TRUE(dag.Add("b", {"a"},
                        [&cancel](util::StageMetrics*) { cancel.Cancel(); })
                    .ok());
    ASSERT_TRUE(dag.Add("c", {"b"},
                        [&c_ran](util::StageMetrics*) { c_ran.store(true); })
                    .ok());
    const util::Status status = dag.Run(ctx);
    EXPECT_EQ(status.code(), util::StatusCode::kCancelled);
    EXPECT_FALSE(c_ran.load());
    EXPECT_NE(metrics.Find("b"), nullptr);
    EXPECT_EQ(metrics.Find("c"), nullptr);
  }
}

// A throwing stage fails the run with Internal (naming the stage), skips
// dependents, and still drains the graph.
TEST(StageDagTest, ThrowingStageFailsRunAndSkipsDependents) {
  for (const bool use_pool : {false, true}) {
    util::ThreadPool pool(4);
    util::PipelineMetrics metrics;
    util::StatusSink sink;
    const util::ExecutionContext ctx(use_pool ? &pool : nullptr, &metrics,
                                     nullptr, &sink);
    core::StageDag dag;
    std::atomic<bool> b_ran{false};
    ASSERT_TRUE(dag.Add("boom", {},
                        [](util::StageMetrics*) {
                          throw std::runtime_error("kaput");
                        })
                    .ok());
    ASSERT_TRUE(dag.Add("after", {"boom"},
                        [&b_ran](util::StageMetrics*) { b_ran.store(true); })
                    .ok());
    const util::Status status = dag.Run(ctx);
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
    EXPECT_NE(status.message().find("boom"), std::string::npos);
    EXPECT_NE(status.message().find("kaput"), std::string::npos);
    EXPECT_FALSE(b_ran.load());
  }
}

// A pre-cancelled token makes MineVideo return kCancelled without mining.
TEST(StageDagTest, PreCancelledMineVideoReturnsCancelled) {
  const synth::GeneratedVideo g = synth::GenerateVideo(synth::QuickScript(7));
  util::CancellationToken cancel;
  cancel.Cancel();
  core::MiningOptions options;
  options.cancel = &cancel;
  const util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio, options);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), util::StatusCode::kCancelled);
}

// The batch scheduler must not clamp per-video parallelism: on a 2-video /
// 8-thread batch every stage of every video reports the full shared pool,
// not one thread per video.
TEST(BatchSchedulingTest, NoPerVideoThreadClamp) {
  const synth::GeneratedVideo a =
      synth::GenerateVideo(synth::QuickScript(41));
  const synth::GeneratedVideo b =
      synth::GenerateVideo(synth::QuickScript(42));
  const std::vector<core::MiningInput> inputs{{&a.video, &a.audio},
                                              {&b.video, &b.audio}};
  const util::StatusOr<std::vector<core::MiningResult>> batch =
      core::MineVideosParallel(inputs, core::MiningOptions(), 8);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  for (const core::MiningResult& result : *batch) {
    ASSERT_FALSE(result.metrics.stages.empty());
    for (const core::StageMetrics& stage : result.metrics.stages) {
      EXPECT_EQ(stage.threads, 8) << stage.name;
    }
  }
}

// Parallel index construction is bit-identical to serial: same tree shape
// and the same centres, observed through exact Search results.
TEST(IndexBuildTest, ParallelBuildMatchesSerial) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(55));
  util::StatusOr<core::MiningResult> mined =
      core::MineVideo(g.video, g.audio);
  ASSERT_TRUE(mined.ok());
  // Keep query features before the structure moves into the database.
  std::vector<features::ShotFeatures> queries;
  for (size_t i = 0; i < mined->structure.shots.size(); i += 3) {
    queries.push_back(mined->structure.shots[i].features);
  }
  ASSERT_FALSE(queries.empty());

  index::VideoDatabase db;
  db.AddVideo("det", std::move(mined->structure), std::move(mined->events));
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();

  const index::HierarchicalIndex serial(&db, &concepts);

  util::ThreadPool pool(4);
  util::PipelineMetrics metrics;
  const util::ExecutionContext ctx(&pool, &metrics, nullptr, nullptr);
  const index::HierarchicalIndex parallel(
      &db, &concepts, index::HierarchicalIndex::Options(), ctx);

  EXPECT_EQ(parallel.cluster_count(), serial.cluster_count());
  EXPECT_EQ(parallel.TotalSceneNodes(), serial.TotalSceneNodes());
  EXPECT_EQ(parallel.TotalIndexedShots(), serial.TotalIndexedShots());
  // The build recorded its cost row through the context.
  const util::StageMetrics* row = metrics.Find("index_build");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->items,
            static_cast<int64_t>(parallel.TotalIndexedShots()));
  EXPECT_EQ(row->threads, 4);

  for (const features::ShotFeatures& q : queries) {
    const std::vector<index::QueryMatch> s = serial.Search(q, 5);
    const std::vector<index::QueryMatch> p = parallel.Search(q, 5);
    ASSERT_EQ(p.size(), s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(p[i].ref, s[i].ref);
      EXPECT_EQ(p[i].similarity, s[i].similarity);  // exact, not approx
    }
  }
}

}  // namespace
}  // namespace classminer

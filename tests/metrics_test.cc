#include <gtest/gtest.h>

#include "core/metrics.h"

namespace classminer::core {
namespace {

// Truth: 2 scenes of 2 shots each, 30 frames per shot.
synth::GroundTruth MakeTruth() {
  synth::GroundTruth truth;
  for (int i = 0; i < 4; ++i) {
    synth::ShotTruth s;
    s.index = i;
    s.start_frame = i * 30;
    s.end_frame = i * 30 + 29;
    s.scene_index = i / 2;
    truth.shots.push_back(s);
  }
  synth::SceneTruth a;
  a.index = 0;
  a.kind = synth::SceneKind::kPresentation;
  a.start_shot = 0;
  a.end_shot = 1;
  synth::SceneTruth b;
  b.index = 1;
  b.kind = synth::SceneKind::kClinicalOperation;
  b.start_shot = 2;
  b.end_shot = 3;
  truth.scenes = {a, b};
  return truth;
}

std::vector<shot::Shot> AlignedShots() {
  std::vector<shot::Shot> shots;
  for (int i = 0; i < 4; ++i) {
    shot::Shot s;
    s.index = i;
    s.start_frame = i * 30;
    s.end_frame = i * 30 + 29;
    s.rep_frame = s.start_frame + 9;
    shots.push_back(s);
  }
  return shots;
}

TEST(SceneScoreTest, PerfectDetection) {
  const auto truth = MakeTruth();
  const auto shots = AlignedShots();
  const std::vector<std::vector<int>> scenes{{0, 1}, {2, 3}};
  const SceneDetectionScore score = ScoreSceneDetection(shots, scenes, truth);
  EXPECT_EQ(score.detected_scenes, 2);
  EXPECT_EQ(score.correct_scenes, 2);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.crf, 0.5);
}

TEST(SceneScoreTest, MixedSceneIsWrong) {
  const auto truth = MakeTruth();
  const auto shots = AlignedShots();
  const std::vector<std::vector<int>> scenes{{0, 1, 2}, {3}};
  const SceneDetectionScore score = ScoreSceneDetection(shots, scenes, truth);
  EXPECT_EQ(score.correct_scenes, 1);  // only {3} is pure
  EXPECT_DOUBLE_EQ(score.precision, 0.5);
}

TEST(SceneScoreTest, OverSegmentationIsPureButLowCompression) {
  const auto truth = MakeTruth();
  const auto shots = AlignedShots();
  const std::vector<std::vector<int>> scenes{{0}, {1}, {2}, {3}};
  const SceneDetectionScore score = ScoreSceneDetection(shots, scenes, truth);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.crf, 1.0);  // no compression
}

TEST(CutScoreTest, ToleranceMatching) {
  const std::vector<int> truth{29, 59, 89};
  const std::vector<int> detected{30, 57, 200};
  const CutScore score = ScoreCuts(detected, truth, 2);
  EXPECT_EQ(score.matched, 2);
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall, 2.0 / 3.0, 1e-12);
}

TEST(CutScoreTest, EachTruthMatchedOnce) {
  const std::vector<int> truth{29};
  const std::vector<int> detected{28, 29, 30};
  const CutScore score = ScoreCuts(detected, truth, 2);
  EXPECT_EQ(score.matched, 1);
}

TEST(EventScoreTest, TableAccumulation) {
  // Detected structure aligned with truth: scene 0 = shots 0-1 (truth
  // presentation), scene 1 = shots 2-3 (truth clinical).
  structure::ContentStructure cs;
  cs.shots = AlignedShots();
  for (int g = 0; g < 2; ++g) {
    structure::Group group;
    group.index = g;
    group.start_shot = g * 2;
    group.end_shot = g * 2 + 1;
    cs.groups.push_back(group);
    structure::Scene scene;
    scene.index = g;
    scene.start_group = g;
    scene.end_group = g;
    cs.scenes.push_back(scene);
  }
  // Miner got the presentation right and called the clinical scene dialog.
  events::EventRecord r0;
  r0.scene_index = 0;
  r0.type = events::EventType::kPresentation;
  events::EventRecord r1;
  r1.scene_index = 1;
  r1.type = events::EventType::kDialog;

  EventScoreTable table;
  AccumulateEventScores(cs, {r0, r1}, MakeTruth(), &table);
  FinalizeEventScores(&table);

  EXPECT_EQ(table.presentation.selected, 1);
  EXPECT_EQ(table.presentation.detected, 1);
  EXPECT_EQ(table.presentation.correct, 1);
  EXPECT_DOUBLE_EQ(table.presentation.precision, 1.0);

  EXPECT_EQ(table.clinical.selected, 1);
  EXPECT_EQ(table.clinical.correct, 0);
  EXPECT_EQ(table.dialog.detected, 1);
  EXPECT_EQ(table.dialog.correct, 0);

  const EventScore avg = table.Average();
  EXPECT_EQ(avg.selected, 2);
  EXPECT_EQ(avg.detected, 2);
  EXPECT_EQ(avg.correct, 1);
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.recall, 0.5);
}

TEST(EventTypeOfKindTest, Mapping) {
  EXPECT_EQ(EventTypeOfKind(synth::SceneKind::kPresentation),
            events::EventType::kPresentation);
  EXPECT_EQ(EventTypeOfKind(synth::SceneKind::kOther),
            events::EventType::kUndetermined);
}

}  // namespace
}  // namespace classminer::core

#include <gtest/gtest.h>

#include <cmath>

#include "audio/audio_buffer.h"
#include "audio/bic.h"
#include "audio/features.h"
#include "audio/gmm.h"
#include "audio/mfcc.h"
#include "audio/speaker_segmenter.h"
#include "synth/audio_generator.h"
#include "util/rng.h"

namespace classminer::audio {
namespace {

AudioBuffer Tone(double hz, double seconds, int sr = 16000) {
  AudioBuffer buf(sr);
  std::vector<float> samples(static_cast<size_t>(seconds * sr));
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<float>(0.4 * std::sin(2.0 * M_PI * hz * i / sr));
  }
  buf.Append(samples);
  return buf;
}

AudioBuffer Speech(int speaker, double seconds, uint64_t seed = 1) {
  AudioBuffer buf(16000);
  util::Rng rng(seed);
  synth::AppendSpeech(&buf, synth::MakeSpeakerVoice(speaker), seconds, &rng);
  return buf;
}

TEST(AudioBufferTest, SliceBounds) {
  AudioBuffer buf(100);
  std::vector<float> s(250);
  for (size_t i = 0; i < s.size(); ++i) s[i] = static_cast<float>(i);
  buf.Append(s);
  const AudioBuffer mid = buf.Slice(1.0, 1.0);
  ASSERT_EQ(mid.sample_count(), 100u);
  EXPECT_FLOAT_EQ(mid.at(0), 100.0f);
  const AudioBuffer past = buf.Slice(10.0, 1.0);
  EXPECT_TRUE(past.empty());
  const AudioBuffer tail = buf.Slice(2.0, 5.0);  // clamped
  EXPECT_EQ(tail.sample_count(), 50u);
}

TEST(AudioBufferTest, Duration) {
  AudioBuffer buf(8000);
  buf.samples().resize(4000);
  EXPECT_DOUBLE_EQ(buf.DurationSeconds(), 0.5);
}

TEST(ClipFeaturesTest, SilenceVsTone) {
  util::Rng rng(2);
  AudioBuffer silence(16000);
  synth::AppendSilence(&silence, 2.0, &rng);
  const ClipFeatures fs = ComputeClipFeatures(silence);
  const ClipFeatures ft = ComputeClipFeatures(Tone(220.0, 2.0));
  EXPECT_LT(fs[0], ft[0]);       // volume
  EXPECT_GT(ft[6] * 1000.0, 100.0);  // pitch detected near 220 Hz
  EXPECT_LT(std::fabs(ft[6] * 1000.0 - 220.0), 40.0);
}

TEST(ClipFeaturesTest, SubbandRatiosSumToOne) {
  const ClipFeatures f = ComputeClipFeatures(Speech(1, 2.0));
  EXPECT_NEAR(f[10] + f[11] + f[12] + f[13], 1.0, 1e-6);
}

TEST(ClipFeaturesTest, EmptyClipAllZero) {
  const ClipFeatures f = ComputeClipFeatures(AudioBuffer(16000));
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(ClipSplitTest, CountsAndRemainder) {
  AudioBuffer buf(1000);
  buf.samples().resize(5300);  // 5.3 s
  const std::vector<AudioBuffer> clips = SplitIntoClips(buf, 2.0);
  // Clips at 0-2, 2-4; remainder 1.3 s >= half clip so a third is kept.
  ASSERT_EQ(clips.size(), 3u);
  EXPECT_EQ(clips[0].sample_count(), 2000u);
  EXPECT_EQ(clips[2].sample_count(), 1300u);
}

TEST(MfccTest, ShapeAndWindows) {
  const AudioBuffer clip = Tone(300.0, 1.0);
  const util::Matrix mfcc = ComputeMfcc(clip);
  EXPECT_EQ(mfcc.cols(), static_cast<size_t>(kMfccDims));
  // 1 s at 30 ms windows / 10 ms hop: (16000 - 480) / 160 + 1 = 98.
  EXPECT_EQ(mfcc.rows(), 98u);
}

TEST(MfccTest, DifferentTonesDiffer) {
  const util::Matrix a = ComputeMfcc(Tone(200.0, 0.5));
  const util::Matrix b = ComputeMfcc(Tone(2000.0, 0.5));
  double dist = 0.0;
  for (size_t c = 1; c < static_cast<size_t>(kMfccDims); ++c) {
    double ma = 0.0, mb = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) ma += a.at(r, c);
    for (size_t r = 0; r < b.rows(); ++r) mb += b.at(r, c);
    dist += std::fabs(ma / a.rows() - mb / b.rows());
  }
  EXPECT_GT(dist, 1.0);
}

TEST(MfccTest, DeltasDoubleDimensionality) {
  const util::Matrix mfcc = ComputeMfcc(Tone(300.0, 0.5));
  const util::Matrix with_deltas = AppendDeltas(mfcc);
  EXPECT_EQ(with_deltas.rows(), mfcc.rows());
  EXPECT_EQ(with_deltas.cols(), 2 * mfcc.cols());
  // Static part is preserved verbatim.
  for (size_t c = 0; c < mfcc.cols(); ++c) {
    EXPECT_DOUBLE_EQ(with_deltas.at(3, c), mfcc.at(3, c));
  }
}

TEST(MfccTest, DeltasOfStationarySignalAreSmall) {
  const util::Matrix mfcc = ComputeMfcc(Tone(440.0, 0.5));
  const util::Matrix with_deltas = AppendDeltas(mfcc);
  double acc = 0.0;
  for (size_t r = 2; r + 2 < with_deltas.rows(); ++r) {
    for (size_t c = mfcc.cols(); c < with_deltas.cols(); ++c) {
      acc += std::fabs(with_deltas.at(r, c));
    }
  }
  double static_acc = 0.0;
  for (size_t r = 2; r + 2 < mfcc.rows(); ++r) {
    for (size_t c = 1; c < mfcc.cols(); ++c) {
      static_acc += std::fabs(mfcc.at(r, c));
    }
  }
  EXPECT_LT(acc, static_acc);  // pure tone: dynamics below statics
}

TEST(MfccTest, CmnZeroesColumnMeans) {
  util::Matrix mfcc = ComputeMfcc(Speech(2, 1.0, 60));
  CepstralMeanNormalize(&mfcc);
  for (size_t c = 0; c < mfcc.cols(); ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < mfcc.rows(); ++r) mean += mfcc.at(r, c);
    EXPECT_NEAR(mean / static_cast<double>(mfcc.rows()), 0.0, 1e-9);
  }
}

TEST(MfccTest, TooShortClipIsEmpty) {
  AudioBuffer buf(16000);
  buf.samples().resize(100);
  EXPECT_EQ(ComputeMfcc(buf).rows(), 0u);
}

util::Matrix GaussianSamples(double mean, double stddev, size_t n, size_t d,
                             uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(n, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) m.at(r, c) = rng.Gaussian(mean, stddev);
  }
  return m;
}

TEST(GmmTest, FitsSingleGaussian) {
  const util::Matrix samples = GaussianSamples(3.0, 0.5, 400, 2, 31);
  Gmm::TrainOptions opts;
  opts.components = 1;
  util::StatusOr<Gmm> gmm = Gmm::Train(samples, opts);
  ASSERT_TRUE(gmm.ok());
  EXPECT_NEAR(gmm->components()[0].mean[0], 3.0, 0.1);
  EXPECT_NEAR(gmm->components()[0].variance[0], 0.25, 0.08);
}

TEST(GmmTest, RejectsTooFewSamples) {
  Gmm::TrainOptions opts;
  opts.components = 8;
  EXPECT_FALSE(Gmm::Train(util::Matrix(3, 2), opts).ok());
}

TEST(GmmTest, HigherLikelihoodOnOwnDistribution) {
  const util::Matrix a = GaussianSamples(0.0, 1.0, 300, 3, 32);
  const util::Matrix b = GaussianSamples(8.0, 1.0, 300, 3, 33);
  Gmm::TrainOptions opts;
  opts.components = 2;
  util::StatusOr<Gmm> ga = Gmm::Train(a, opts);
  util::StatusOr<Gmm> gb = Gmm::Train(b, opts);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_GT(ga->AverageLogLikelihood(a), gb->AverageLogLikelihood(a));
  EXPECT_GT(gb->AverageLogLikelihood(b), ga->AverageLogLikelihood(b));
}

TEST(GmmClassifierTest, SeparatesClasses) {
  const util::Matrix c0 = GaussianSamples(0.0, 1.0, 200, 2, 34);
  const util::Matrix c1 = GaussianSamples(5.0, 1.0, 200, 2, 35);
  Gmm::TrainOptions opts;
  opts.components = 2;
  GmmClassifier clf(*Gmm::Train(c0, opts), *Gmm::Train(c1, opts));
  EXPECT_EQ(clf.Classify(GaussianSamples(0.1, 1.0, 50, 2, 36)), 0);
  EXPECT_EQ(clf.Classify(GaussianSamples(4.9, 1.0, 50, 2, 37)), 1);
}

TEST(BicTest, SameSpeakerNoChange) {
  const util::Matrix x1 = ComputeMfcc(Speech(1, 2.0, 41));
  const util::Matrix x2 = ComputeMfcc(Speech(1, 2.0, 42));
  const BicResult r = BicSpeakerChangeTest(x1, x2);
  EXPECT_FALSE(r.speaker_change) << "delta_bic=" << r.delta_bic;
}

TEST(BicTest, DifferentSpeakersChange) {
  const util::Matrix x1 = ComputeMfcc(Speech(1, 2.0, 43));
  const util::Matrix x2 = ComputeMfcc(Speech(2, 2.0, 44));
  const BicResult r = BicSpeakerChangeTest(x1, x2);
  EXPECT_TRUE(r.speaker_change) << "delta_bic=" << r.delta_bic;
}

TEST(BicTest, SymmetricDecision) {
  const util::Matrix x1 = ComputeMfcc(Speech(3, 2.0, 45));
  const util::Matrix x2 = ComputeMfcc(Speech(4, 2.0, 46));
  EXPECT_EQ(BicSpeakerChangeTest(x1, x2).speaker_change,
            BicSpeakerChangeTest(x2, x1).speaker_change);
}

TEST(BicTest, EmptyInputNeverChanges) {
  const util::Matrix x = ComputeMfcc(Speech(1, 1.0, 47));
  EXPECT_FALSE(BicSpeakerChangeTest(x, util::Matrix(0, 14)).speaker_change);
}

TEST(SpeakerSegmenterTest, ShortShotNotAnalyzable) {
  SpeakerSegmenter seg;
  const AudioBuffer audio = Speech(1, 5.0, 51);
  const ShotAudioAnalysis a = seg.AnalyzeShot(audio, 0.0, 1.0, 0);
  EXPECT_FALSE(a.analyzable);
  EXPECT_FALSE(a.has_speech);
}

TEST(SpeakerSegmenterTest, SpeechShotsDetected) {
  SpeakerSegmenter seg;
  const AudioBuffer audio = Speech(1, 6.0, 52);
  const ShotAudioAnalysis a = seg.AnalyzeShot(audio, 0.0, 3.0, 0);
  EXPECT_TRUE(a.analyzable);
  EXPECT_TRUE(a.has_speech);
  EXPECT_GT(a.mfcc.rows(), 0u);
}

TEST(SpeakerSegmenterTest, NoiseIsNotSpeech) {
  SpeakerSegmenter seg;
  AudioBuffer audio(16000);
  util::Rng rng(53);
  synth::AppendProcedureNoise(&audio, 6.0, &rng);
  const ShotAudioAnalysis a = seg.AnalyzeShot(audio, 0.0, 4.0, 0);
  EXPECT_TRUE(a.analyzable);
  EXPECT_FALSE(a.has_speech);
}

TEST(SpeakerSegmenterTest, SpeakerChangeAcrossShots) {
  SpeakerSegmenter seg;
  AudioBuffer audio(16000);
  util::Rng rng(54);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(7), 3.0, &rng);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(8), 3.0, &rng);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(7), 3.0, &rng);
  const ShotAudioAnalysis s0 = seg.AnalyzeShot(audio, 0.0, 3.0, 0);
  const ShotAudioAnalysis s1 = seg.AnalyzeShot(audio, 3.0, 6.0, 1);
  const ShotAudioAnalysis s2 = seg.AnalyzeShot(audio, 6.0, 9.0, 2);
  EXPECT_TRUE(seg.SpeakerChange(s0, s1));
  EXPECT_TRUE(seg.SpeakerChange(s1, s2));
  EXPECT_FALSE(seg.SpeakerChange(s0, s2));  // same speaker resumes
}

TEST(SpeakerSegmenterTest, DiarizationLabelsAlternation) {
  SpeakerSegmenter seg;
  AudioBuffer audio(16000);
  util::Rng rng(57);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(11), 3.0, &rng);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(12), 3.0, &rng);
  synth::AppendSpeech(&audio, synth::MakeSpeakerVoice(11), 3.0, &rng);
  synth::AppendProcedureNoise(&audio, 3.0, &rng);

  std::vector<ShotAudioAnalysis> shots;
  for (int i = 0; i < 4; ++i) {
    shots.push_back(seg.AnalyzeShot(audio, i * 3.0, (i + 1) * 3.0, i));
  }
  const std::vector<int> labels = seg.DiarizeShots(shots);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], 0);          // first speaker
  EXPECT_EQ(labels[2], labels[0]);  // returns in shot 2
  EXPECT_NE(labels[1], labels[0]);  // second party distinct
  EXPECT_EQ(labels[3], -1);         // noise shot unlabelled
}

TEST(SpeakerSegmenterTest, DiarizationEmptyInput) {
  SpeakerSegmenter seg;
  EXPECT_TRUE(seg.DiarizeShots({}).empty());
}

TEST(SpeechClassifierTest, TrainedGmmClassifierSeparatesSpeechFromNoise) {
  // Build labelled clip-feature matrices from the generators.
  util::Rng rng(55);
  const int clips = 24;
  util::Matrix speech(clips, kClipFeatureDims);
  util::Matrix nonspeech(clips, kClipFeatureDims);
  for (int i = 0; i < clips; ++i) {
    AudioBuffer s(16000);
    synth::AppendSpeech(&s, synth::MakeSpeakerVoice(i % 5), 2.0, &rng);
    const ClipFeatures fs = ComputeClipFeatures(s);
    AudioBuffer nz(16000);
    if (i % 2 == 0) {
      synth::AppendProcedureNoise(&nz, 2.0, &rng);
    } else {
      synth::AppendSilence(&nz, 2.0, &rng);
    }
    const ClipFeatures fn = ComputeClipFeatures(nz);
    for (int d = 0; d < kClipFeatureDims; ++d) {
      speech.at(static_cast<size_t>(i), static_cast<size_t>(d)) =
          fs[static_cast<size_t>(d)];
      nonspeech.at(static_cast<size_t>(i), static_cast<size_t>(d)) =
          fn[static_cast<size_t>(d)];
    }
  }
  util::StatusOr<GmmClassifier> clf =
      TrainSpeechClassifier(nonspeech, speech, /*components=*/2);
  ASSERT_TRUE(clf.ok());

  // Held-out clips.
  AudioBuffer s(16000);
  synth::AppendSpeech(&s, synth::MakeSpeakerVoice(9), 2.0, &rng);
  util::Matrix row(1, kClipFeatureDims);
  const ClipFeatures fs = ComputeClipFeatures(s);
  for (int d = 0; d < kClipFeatureDims; ++d) {
    row.at(0, static_cast<size_t>(d)) = fs[static_cast<size_t>(d)];
  }
  EXPECT_EQ(clf->Classify(row), 1);

  AudioBuffer nz(16000);
  synth::AppendProcedureNoise(&nz, 2.0, &rng);
  const ClipFeatures fn = ComputeClipFeatures(nz);
  for (int d = 0; d < kClipFeatureDims; ++d) {
    row.at(0, static_cast<size_t>(d)) = fn[static_cast<size_t>(d)];
  }
  EXPECT_EQ(clf->Classify(row), 0);
}

}  // namespace
}  // namespace classminer::audio

#include <gtest/gtest.h>

#include <cmath>

#include "features/frame_diff.h"
#include "features/histogram.h"
#include "features/similarity.h"
#include "features/tamura.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::features {
namespace {

media::Image Solid(int w, int h, media::Rgb c) { return media::Image(w, h, c); }

media::Image Checker(int w, int h, int cell) {
  media::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const bool on = ((x / cell) + (y / cell)) % 2 == 0;
      img.set(x, y, on ? media::Rgb{255, 255, 255} : media::Rgb{0, 0, 0});
    }
  }
  return img;
}

TEST(HistogramTest, NormalisedToUnitMass) {
  const ColorHistogram h =
      ComputeColorHistogram(Solid(16, 16, media::Rgb{200, 30, 40}));
  double mass = 0.0;
  for (double v : h) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(HistogramTest, SolidImageFillsOneBin) {
  const ColorHistogram h =
      ComputeColorHistogram(Solid(8, 8, media::Rgb{200, 30, 40}));
  int nonzero = 0;
  for (double v : h) {
    if (v > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(HistogramTest, IntersectionIdentityAndDisjoint) {
  const ColorHistogram a =
      ComputeColorHistogram(Solid(8, 8, media::Rgb{255, 0, 0}));
  const ColorHistogram b =
      ComputeColorHistogram(Solid(8, 8, media::Rgb{0, 0, 255}));
  EXPECT_NEAR(HistogramIntersection(a, a), 1.0, 1e-9);
  EXPECT_NEAR(HistogramIntersection(a, b), 0.0, 1e-9);
}

TEST(HistogramTest, IntersectionSymmetric) {
  util::Rng rng(9);
  media::Image x(16, 16), y(16, 16);
  media::AddNoise(&x, 255, &rng);
  media::AddNoise(&y, 255, &rng);
  const ColorHistogram hx = ComputeColorHistogram(x);
  const ColorHistogram hy = ComputeColorHistogram(y);
  EXPECT_DOUBLE_EQ(HistogramIntersection(hx, hy),
                   HistogramIntersection(hy, hx));
}

TEST(HistogramTest, EmptyImageIsZero) {
  const ColorHistogram h = ComputeColorHistogram(media::Image());
  for (double v : h) EXPECT_EQ(v, 0.0);
}

TEST(TamuraTest, DimensionsAndRange) {
  const TamuraVector t = ComputeTamuraCoarseness(Checker(64, 64, 4));
  ASSERT_EQ(t.size(), static_cast<size_t>(kTamuraDims));
  for (double v : t) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(TamuraTest, ScaleHistogramSumsToOne) {
  const TamuraVector t = ComputeTamuraCoarseness(Checker(64, 64, 8));
  double mass = 0.0;
  for (int k = 0; k < kCoarsenessScales; ++k) mass += t[static_cast<size_t>(k)];
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(TamuraTest, CoarserPatternHasLargerMeanScale) {
  const TamuraVector fine = ComputeTamuraCoarseness(Checker(128, 128, 2));
  const TamuraVector coarse = ComputeTamuraCoarseness(Checker(128, 128, 16));
  EXPECT_GT(coarse[6], fine[6]);  // normalised mean best-scale
}

TEST(SimilarityTest, IdenticalFramesScoreOne) {
  util::Rng rng(4);
  media::Image img(32, 32, media::Rgb{120, 90, 60});
  media::AddNoise(&img, 30, &rng);
  const ShotFeatures f = ExtractShotFeatures(img);
  EXPECT_NEAR(StSim(f, f), 1.0, 1e-9);
}

TEST(SimilarityTest, BoundedAndSymmetric) {
  util::Rng rng(5);
  media::Image a(32, 32, media::Rgb{200, 40, 40});
  media::Image b(32, 32, media::Rgb{20, 40, 200});
  media::AddNoise(&a, 20, &rng);
  media::AddNoise(&b, 20, &rng);
  const ShotFeatures fa = ExtractShotFeatures(a);
  const ShotFeatures fb = ExtractShotFeatures(b);
  const double ab = StSim(fa, fb);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_DOUBLE_EQ(ab, StSim(fb, fa));
}

TEST(SimilarityTest, WeightsChangeEmphasis) {
  // Same colours, different texture: a high-texture-weight similarity
  // should fall below the colour-only score.
  const media::Image flat = Solid(64, 64, media::Rgb{128, 128, 128});
  media::Image textured = Checker(64, 64, 2);
  // Make the checker's colours match the flat image's mean colour bins
  // closely enough that colour dominates.
  const ShotFeatures ff = ExtractShotFeatures(flat);
  const ShotFeatures ft = ExtractShotFeatures(textured);
  const double color_only = StSim(ff, ft, {1.0, 0.0});
  const double texture_heavy = StSim(ff, ft, {0.0, 1.0});
  EXPECT_GE(color_only, 0.0);
  EXPECT_LT(texture_heavy, 1.0);
}

TEST(FrameDiffTest, IdenticalFramesZero) {
  const media::Image img = Solid(16, 16, media::Rgb{10, 200, 30});
  EXPECT_NEAR(FrameDifference(img, img), 0.0, 1e-12);
}

TEST(FrameDiffTest, CutProducesLargeDifference) {
  const media::Image a = Solid(16, 16, media::Rgb{255, 0, 0});
  const media::Image b = Solid(16, 16, media::Rgb{0, 0, 255});
  EXPECT_GT(FrameDifference(a, b), 0.9);
}

TEST(FrameDiffTest, SeriesLength) {
  media::Video video("t", 10.0);
  for (int i = 0; i < 5; ++i) video.AppendFrame(Solid(8, 8, media::Rgb{0, 0, 0}));
  EXPECT_EQ(FrameDifferenceSeries(video).size(), 4u);
}

TEST(FrameDiffTest, BlockLumaDifferenceBounds) {
  media::GrayImage a(8, 8, 0);
  media::GrayImage b(8, 8, 255);
  EXPECT_NEAR(BlockLumaDifference(a, b), 1.0, 1e-12);
  EXPECT_NEAR(BlockLumaDifference(a, a), 0.0, 1e-12);
}

}  // namespace
}  // namespace classminer::features

#include <gtest/gtest.h>

#include "cues/cue_extractor.h"
#include "synth/corpus.h"
#include "synth/video_generator.h"

namespace classminer::synth {
namespace {

TEST(GroundTruthTest, CutPositionsAndSceneLookup) {
  GroundTruth truth;
  ShotTruth s0;
  s0.index = 0;
  s0.start_frame = 0;
  s0.end_frame = 29;
  s0.scene_index = 0;
  ShotTruth s1;
  s1.index = 1;
  s1.start_frame = 30;
  s1.end_frame = 59;
  s1.scene_index = 1;
  truth.shots = {s0, s1};
  SceneTruth sc0;
  sc0.index = 0;
  sc0.kind = SceneKind::kDialog;
  SceneTruth sc1;
  sc1.index = 1;
  sc1.kind = SceneKind::kDialog;
  truth.scenes = {sc0, sc1};

  EXPECT_EQ(truth.CutPositions(), std::vector<int>{29});
  EXPECT_EQ(truth.SceneOfShot(1), 1);
  EXPECT_EQ(truth.SceneOfShot(9), -1);
  EXPECT_EQ(truth.CountScenesOfKind(SceneKind::kDialog), 2);
  EXPECT_EQ(truth.CountScenesOfKind(SceneKind::kOther), 0);
}

TEST(GeneratorTest, DeterministicForSeed) {
  const VideoScript script = QuickScript(99);
  const GeneratedVideo a = GenerateVideo(script);
  const GeneratedVideo b = GenerateVideo(script);
  ASSERT_EQ(a.video.frame_count(), b.video.frame_count());
  EXPECT_EQ(a.video.frame(5), b.video.frame(5));
  ASSERT_EQ(a.audio.sample_count(), b.audio.sample_count());
  EXPECT_EQ(a.audio.samples()[1000], b.audio.samples()[1000]);
}

TEST(GeneratorTest, TruthIsConsistent) {
  const GeneratedVideo g = GenerateVideo(QuickScript(3));
  ASSERT_FALSE(g.truth.shots.empty());
  // Shots tile the frame axis.
  int next = 0;
  for (const ShotTruth& s : g.truth.shots) {
    EXPECT_EQ(s.start_frame, next);
    EXPECT_GE(s.end_frame, s.start_frame);
    next = s.end_frame + 1;
  }
  EXPECT_EQ(next, g.video.frame_count());
  // Scenes tile the shot axis.
  next = 0;
  for (const SceneTruth& s : g.truth.scenes) {
    EXPECT_EQ(s.start_shot, next);
    next = s.end_shot + 1;
  }
  EXPECT_EQ(next, static_cast<int>(g.truth.shots.size()));
}

TEST(GeneratorTest, AudioAlignedWithFrames) {
  const GeneratedVideo g = GenerateVideo(QuickScript(4));
  const double video_sec = g.video.DurationSeconds();
  const double audio_sec = g.audio.DurationSeconds();
  EXPECT_NEAR(audio_sec, video_sec, 0.2);
}

TEST(GeneratorTest, SlideShotsRenderAsSlides) {
  const GeneratedVideo g = GenerateVideo(QuickScript(5));
  int checked = 0;
  for (const ShotTruth& s : g.truth.shots) {
    if (!s.is_slide) continue;
    const cues::FrameCues cues =
        cues::ExtractFrameCues(g.video.frame(s.start_frame + 5));
    EXPECT_TRUE(cues.IsSlideOrClipArt())
        << "shot " << s.index << " classified as "
        << cues::SpecialFrameTypeName(cues.special);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(GeneratorTest, FaceShotsCarryFaces) {
  const GeneratedVideo g = GenerateVideo(QuickScript(6));
  int face_shots = 0, detected = 0;
  for (const ShotTruth& s : g.truth.shots) {
    if (!s.has_face) continue;
    ++face_shots;
    const cues::FrameCues cues =
        cues::ExtractFrameCues(g.video.frame(s.start_frame + 5));
    if (cues.has_face) ++detected;
  }
  ASSERT_GT(face_shots, 0);
  EXPECT_GE(detected, (face_shots * 2) / 3);
}

TEST(GeneratorTest, ClinicalShotsCarrySkinOrBlood) {
  const GeneratedVideo g = GenerateVideo(QuickScript(7));
  int clinical = 0, flagged = 0;
  for (const ShotTruth& s : g.truth.shots) {
    if (!s.has_skin_closeup && !s.has_blood) continue;
    ++clinical;
    const cues::FrameCues cues =
        cues::ExtractFrameCues(g.video.frame(s.start_frame + 5));
    if (cues.skin_closeup || cues.has_blood) ++flagged;
  }
  ASSERT_GT(clinical, 0);
  EXPECT_GE(flagged, (clinical * 2) / 3);
}

TEST(GeneratorTest, DiagramShotsRenderAsSketches) {
  // An "other" scene with topic % 4 == 1 mixes in sketch diagrams.
  VideoScript script;
  script.name = "diagram";
  script.seed = 91;
  script.scenes = {{SceneKind::kOther, 6, /*topic=*/5, -1, -1, 2.3}};
  const GeneratedVideo g = GenerateVideo(script);
  int diagrams = 0, detected = 0;
  for (const ShotTruth& s : g.truth.shots) {
    if (!s.is_diagram) continue;
    ++diagrams;
    const cues::FrameCues cues =
        cues::ExtractFrameCues(g.video.frame(s.start_frame + 5));
    if (cues.special == cues::SpecialFrameType::kSketch) ++detected;
  }
  ASSERT_GT(diagrams, 0);
  EXPECT_EQ(detected, diagrams);
}

TEST(CorpusTest, FiveTitles) {
  const std::vector<VideoScript> scripts = MedicalCorpusScripts();
  ASSERT_EQ(scripts.size(), 5u);
  EXPECT_EQ(scripts[0].name, "face_repair");
  EXPECT_EQ(scripts[4].name, "laser_eye_surgery");
  for (const VideoScript& s : scripts) {
    EXPECT_GE(s.scenes.size(), 3u);
  }
}

TEST(CorpusTest, ScaleGrowsSceneCount) {
  CorpusOptions small;
  small.scale = 0.5;
  CorpusOptions big;
  big.scale = 2.0;
  const auto s = MedicalCorpusScripts(small);
  const auto b = MedicalCorpusScripts(big);
  EXPECT_GT(b[0].scenes.size(), s[0].scenes.size());
}

TEST(CorpusTest, AllKindsPresentAcrossCorpus) {
  const std::vector<VideoScript> scripts = MedicalCorpusScripts();
  int counts[4] = {0, 0, 0, 0};
  for (const VideoScript& s : scripts) {
    for (const SceneScript& scene : s.scenes) {
      ++counts[static_cast<int>(scene.kind)];
    }
  }
  EXPECT_GT(counts[0], 0);  // presentation
  EXPECT_GT(counts[1], 0);  // dialog
  EXPECT_GT(counts[2], 0);  // clinical
  EXPECT_GT(counts[3], 0);  // other
}

}  // namespace
}  // namespace classminer::synth

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "media/color.h"
#include "media/draw.h"
#include "shot/detector.h"
#include "shot/rep_frame.h"
#include "shot/threshold.h"
#include "util/rng.h"

namespace classminer::shot {
namespace {

// Video with cuts at known positions: each segment is a distinct solid
// colour with mild noise.
media::Video MakeCutVideo(const std::vector<int>& segment_lengths,
                          uint64_t seed) {
  util::Rng rng(seed);
  media::Video video("cuts", 12.0);
  const media::Rgb palette[] = {{200, 40, 40}, {40, 200, 40}, {40, 40, 200},
                                {200, 200, 40}, {40, 200, 200}, {200, 40, 200}};
  int color = 0;
  for (int len : segment_lengths) {
    for (int f = 0; f < len; ++f) {
      media::Image img(48, 36, palette[color % 6]);
      media::AddNoise(&img, 5, &rng);
      video.AppendFrame(std::move(img));
    }
    ++color;
  }
  return video;
}

TEST(ThresholdTest, SizeMatchesInput) {
  const std::vector<double> diffs(50, 0.05);
  EXPECT_EQ(AdaptiveThresholds(diffs).size(), 50u);
  EXPECT_TRUE(AdaptiveThresholds({}).empty());
}

TEST(ThresholdTest, FloorApplies) {
  const std::vector<double> diffs(40, 0.001);
  AdaptiveThresholdOptions opts;
  opts.min_threshold = 0.08;
  for (double t : AdaptiveThresholds(diffs, opts)) EXPECT_GE(t, 0.08);
}

TEST(ThresholdTest, AdaptsToLocalActivity) {
  // First half quiet, second half busy: thresholds must be higher there.
  std::vector<double> diffs;
  util::Rng rng(61);
  for (int i = 0; i < 60; ++i) diffs.push_back(rng.Uniform(0.0, 0.02));
  for (int i = 0; i < 60; ++i) diffs.push_back(rng.Uniform(0.2, 0.4));
  const std::vector<double> t = AdaptiveThresholds(diffs);
  EXPECT_GT(t[100], t[20]);
}

TEST(DetectorTest, FindsAllCuts) {
  const std::vector<int> lengths{30, 25, 40, 28, 35};
  const media::Video video = MakeCutVideo(lengths, 62);
  ShotDetectionTrace trace;
  const std::vector<Shot> shots = DetectShots(video, {}, &trace);
  ASSERT_EQ(shots.size(), lengths.size());
  // Boundaries at cumulative positions.
  int cum = 0;
  for (size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(shots[i].start_frame, cum);
    cum += lengths[i];
    EXPECT_EQ(shots[i].end_frame, cum - 1);
  }
}

TEST(DetectorTest, NoCutsInSteadyVideo) {
  const media::Video video = MakeCutVideo({80}, 63);
  const std::vector<Shot> shots = DetectShots(video);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].frame_count(), 80);
}

TEST(DetectorTest, MinShotLengthSuppressesNearbyCuts) {
  std::vector<double> diffs(40, 0.01);
  diffs[10] = 0.9;
  diffs[12] = 0.85;  // too close to the first cut
  ShotDetectorOptions opts;
  opts.min_shot_frames = 5;
  const std::vector<int> cuts = DetectCuts(diffs, opts);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 10);
}

TEST(DetectorTest, GradualTransitionYieldsSinglePeakCut) {
  std::vector<double> diffs(60, 0.01);
  // A 5-frame dissolve: rising then falling differences.
  diffs[30] = 0.3;
  diffs[31] = 0.5;
  diffs[32] = 0.7;
  diffs[33] = 0.5;
  diffs[34] = 0.3;
  const std::vector<int> cuts = DetectCuts(diffs, ShotDetectorOptions());
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 32);
}

TEST(DetectorTest, TraceSeriesAligned) {
  const media::Video video = MakeCutVideo({20, 20}, 64);
  ShotDetectionTrace trace;
  DetectShots(video, {}, &trace);
  EXPECT_EQ(trace.differences.size(), 39u);
  EXPECT_EQ(trace.thresholds.size(), 39u);
  ASSERT_EQ(trace.cuts.size(), 1u);
  EXPECT_EQ(trace.cuts[0], 19);
}

TEST(RepFrameTest, TenthFrameRule) {
  EXPECT_EQ(RepresentativeFrameIndex(0, 100), 9);
  EXPECT_EQ(RepresentativeFrameIndex(50, 100), 59);
  EXPECT_EQ(RepresentativeFrameIndex(0, 4), 4);  // short shot clamps
}

TEST(RepFrameTest, BoundaryClamping) {
  // Shots shorter than 10 frames clamp to their last frame, down to a
  // single-frame shot that is its own representative.
  EXPECT_EQ(RepresentativeFrameIndex(20, 25), 25);
  EXPECT_EQ(RepresentativeFrameIndex(7, 7), 7);
  // Exactly 10 frames: the 10th frame is the shot's last frame.
  EXPECT_EQ(RepresentativeFrameIndex(30, 39), 39);
  // A degenerate span never yields an index before the shot start.
  EXPECT_EQ(RepresentativeFrameIndex(12, 11), 12);
}

TEST(RepFrameTest, LastShotEndingAtFinalFrame) {
  // A final shot ending at frame_count() - 1 with fewer than 10 frames
  // must pick a valid in-range representative and real features.
  const media::Video video = MakeCutVideo({30, 6}, 67);
  const std::vector<Shot> shots = DetectShots(video);
  ASSERT_EQ(shots.size(), 2u);
  const Shot& last = shots.back();
  EXPECT_EQ(last.end_frame, video.frame_count() - 1);
  EXPECT_EQ(last.rep_frame, RepresentativeFrameIndex(last.start_frame,
                                                     last.end_frame));
  EXPECT_LT(last.rep_frame, video.frame_count());
  EXPECT_GE(last.rep_frame, last.start_frame);
  double mass = 0.0;
  for (double v : last.features.histogram) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(RepFrameTest, PopulateClampsSpansBeyondVideo) {
  // Compressed-domain traces can hand over a span that overshoots the
  // decoded frame count by one; the representative must clamp into range
  // instead of silently keeping zero features.
  const media::Video video = MakeCutVideo({12}, 68);
  std::vector<Shot> shots(1);
  shots[0].index = 0;
  shots[0].start_frame = 8;
  shots[0].end_frame = 20;  // beyond frame_count() - 1 == 11
  PopulateRepresentativeFrames(video, &shots);
  EXPECT_EQ(shots[0].rep_frame, 11);
  double mass = 0.0;
  for (double v : shots[0].features.histogram) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(RepFrameTest, PopulateParallelMatchesSerial) {
  const media::Video video = MakeCutVideo({30, 25, 40, 28, 35}, 69);
  std::vector<Shot> serial = DetectShots(video);
  std::vector<Shot> parallel = serial;
  for (Shot& s : parallel) s.features = {};
  util::ThreadPool pool(4);
  PopulateRepresentativeFrames(video, &parallel, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].rep_frame, serial[i].rep_frame);
    for (size_t k = 0; k < serial[i].features.histogram.size(); ++k) {
      ASSERT_EQ(parallel[i].features.histogram[k],
                serial[i].features.histogram[k]);
    }
  }
}

TEST(RepFrameTest, FeaturesPopulated) {
  const media::Video video = MakeCutVideo({30, 30}, 65);
  const std::vector<Shot> shots = DetectShots(video);
  ASSERT_EQ(shots.size(), 2u);
  for (const Shot& s : shots) {
    double mass = 0.0;
    for (double v : s.features.histogram) mass += v;
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(CompressedDomainTest, DcDetectionMatchesPixelDetection) {
  const std::vector<int> lengths{30, 26, 34};
  const media::Video video = MakeCutVideo(lengths, 66);
  const std::vector<Shot> pixel_shots = DetectShots(video);

  codec::EncoderOptions eopts;
  eopts.gop_size = 6;
  eopts.quality = 6;
  const codec::CmvFile file = codec::EncodeVideo(video, eopts);
  util::StatusOr<std::vector<media::GrayImage>> dc =
      codec::DecodeDcImages(file);
  ASSERT_TRUE(dc.ok());
  const std::vector<Shot> dc_shots = DetectShotsFromDc(*dc);

  ASSERT_EQ(dc_shots.size(), pixel_shots.size());
  for (size_t i = 0; i < dc_shots.size(); ++i) {
    EXPECT_NEAR(dc_shots[i].start_frame, pixel_shots[i].start_frame, 2);
  }
}

// Property sweep: detection recovers the scripted segment count across
// segment lengths and noise levels.
class DetectorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DetectorSweep, RecoversSegments) {
  const int seg_len = std::get<0>(GetParam());
  const int noise = std::get<1>(GetParam());
  util::Rng rng(70 + static_cast<uint64_t>(seg_len) * 10 + noise);
  media::Video video("sweep", 12.0);
  const int segments = 4;
  for (int seg = 0; seg < segments; ++seg) {
    const media::Rgb color = media::HsvToRgb(
        {static_cast<double>(seg) * 87.0, 0.7, 0.8});
    for (int f = 0; f < seg_len; ++f) {
      media::Image img(48, 36, color);
      media::AddNoise(&img, noise, &rng);
      video.AppendFrame(std::move(img));
    }
  }
  const std::vector<Shot> shots = DetectShots(video);
  EXPECT_EQ(shots.size(), static_cast<size_t>(segments));
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndNoise, DetectorSweep,
    ::testing::Combine(::testing::Values(15, 25, 40),
                       ::testing::Values(2, 5, 8)));

}  // namespace
}  // namespace classminer::shot

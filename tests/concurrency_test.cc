#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/classminer.h"
#include "synth/corpus.h"
#include "util/threadpool.h"

namespace classminer {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  util::ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  util::ParallelFor(&pool, 57, [&hits](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  util::ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// Regression: a throwing task used to skip the in-flight decrement, so
// Wait() deadlocked forever. The pool now catches at the worker boundary,
// counts the exception, and stays fully usable.
TEST(ThreadPoolTest, ThrowingTaskDoesNotDeadlockWait) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&completed, i] {
      if (i % 2 == 0) throw std::runtime_error("task failure");
      completed.fetch_add(1);
    });
  }
  pool.Wait();  // must return despite the throwing tasks
  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(pool.exception_count(), 4);

  // The workers survive and keep executing later tasks.
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, NonStdExceptionAlsoCaught) {
  util::ThreadPool pool(1);
  pool.Schedule([] { throw 42; });
  pool.Wait();
  EXPECT_EQ(pool.exception_count(), 1);
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  std::vector<int> hits(13, 0);
  util::ParallelFor(nullptr, 13,
                    [&hits](int i) { ++hits[static_cast<size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForGrainCoversEachIndexOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  util::ParallelFor(
      &pool, 57,
      [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); },
      /*grain=*/5);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, TryRunOneTaskDrainsQueueOnCaller) {
  util::ThreadPool pool(2);
  // Saturate the workers so queued tasks stay queued long enough for the
  // caller to pop at least one itself.
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Schedule([&ran] { ran.fetch_add(1); });
  }
  while (pool.TryRunOneTask()) {
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor body fans out onto the SAME pool. The waiting caller
  // helps drain the queue, so even a 2-thread pool fully saturated by the
  // outer loop completes the inner loops.
  util::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 16);
  util::ParallelFor(&pool, 8, [&](int outer) {
    util::ParallelFor(&pool, 16, [&](int inner) {
      hits[static_cast<size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMiningTest, MatchesSerialResults) {
  // Two small videos; parallel ingest must be bit-identical to serial.
  const synth::GeneratedVideo a =
      synth::GenerateVideo(synth::QuickScript(81));
  const synth::GeneratedVideo b =
      synth::GenerateVideo(synth::QuickScript(82));

  const util::StatusOr<core::MiningResult> sa =
      core::MineVideo(a.video, a.audio);
  const util::StatusOr<core::MiningResult> sb =
      core::MineVideo(b.video, b.audio);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  const std::vector<core::MiningInput> inputs{{&a.video, &a.audio},
                                              {&b.video, &b.audio}};
  const util::StatusOr<std::vector<core::MiningResult>> batch =
      core::MineVideosParallel(inputs, core::MiningOptions(), 2);
  ASSERT_TRUE(batch.ok());
  const std::vector<core::MiningResult>& parallel = *batch;
  ASSERT_EQ(parallel.size(), 2u);

  auto expect_same = [](const core::MiningResult& serial,
                        const core::MiningResult& par) {
    EXPECT_EQ(par.shot_trace.cuts, serial.shot_trace.cuts);
    ASSERT_EQ(par.structure.shots.size(), serial.structure.shots.size());
    EXPECT_EQ(par.structure.groups.size(), serial.structure.groups.size());
    EXPECT_EQ(par.structure.scenes.size(), serial.structure.scenes.size());
    ASSERT_EQ(par.events.size(), serial.events.size());
    for (size_t i = 0; i < serial.events.size(); ++i) {
      EXPECT_EQ(par.events[i].type, serial.events[i].type);
    }
  };
  expect_same(*sa, parallel[0]);
  expect_same(*sb, parallel[1]);
}

TEST(ParallelMiningTest, BatchStatusResolvesPerVideo) {
  // One bad slot (null video) must not take down the batch: its status
  // fails, the healthy slots still mine, and only the first-error-wins
  // wrapper reports the aggregate failure.
  const synth::GeneratedVideo good =
      synth::GenerateVideo(synth::QuickScript(83));
  const std::vector<core::MiningInput> inputs{
      {&good.video, &good.audio},
      {nullptr, &good.audio},
      {&good.video, &good.audio}};

  const core::BatchMiningResult batch =
      core::MineVideosParallelWithStatus(inputs, core::MiningOptions(), 2);
  ASSERT_EQ(batch.results.size(), 3u);
  ASSERT_EQ(batch.statuses.size(), 3u);
  EXPECT_TRUE(batch.statuses[0].ok());
  EXPECT_EQ(batch.statuses[1].code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch.statuses[2].ok());
  EXPECT_EQ(batch.FirstError().code(), util::StatusCode::kInvalidArgument);

  // Healthy slots carry real results, bit-identical to a solo run.
  const util::StatusOr<core::MiningResult> solo =
      core::MineVideo(good.video, good.audio);
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(batch.results[0].shot_trace.cuts, solo->shot_trace.cuts);
  EXPECT_EQ(batch.results[2].shot_trace.cuts, solo->shot_trace.cuts);
  EXPECT_TRUE(batch.results[1].structure.shots.empty());

  // The wrapper refuses the whole batch on any per-video failure.
  EXPECT_FALSE(
      core::MineVideosParallel(inputs, core::MiningOptions(), 2).ok());
}

}  // namespace
}  // namespace classminer

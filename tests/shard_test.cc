// The sharded append-log database tier: hash-partitioned shard logs with
// O(entry) upserts, per-shard fallback and salvage on open, and crash-safe
// compaction. The crash matrix arms every new fail-point site
// ("index.shard.append.{write,fsync}", "index.shard.compact.{write,fsync,
// rename,manifest}", "index.shard.open") and requires that a reopen after
// any injected crash yields a consistent pre- or post-operation state —
// never a torn library.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "index/database.h"
#include "index/persist.h"
#include "index/repair.h"
#include "index/shard.h"
#include "util/failpoint.h"
#include "util/salvage.h"
#include "util/serial.h"
#include "util/status.h"

namespace classminer {
namespace {

using index::ShardedDatabase;
using util::FailPoint;
using util::StatusCode;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::DisarmAll();
    dir_ = ::testing::TempDir();
  }
  void TearDown() override { FailPoint::DisarmAll(); }

  // A unique sharded-database path per test, with every shard file from
  // earlier runs cleared.
  std::string FreshDbPath(const std::string& stem) {
    const std::string path = dir_ + "/" + stem + ".cmdb";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    for (int k = 0; k < 32; ++k) {
      std::remove(index::ShardPath(path, k).c_str());
      std::remove(index::ShardBackupPath(path, k).c_str());
      std::remove((index::ShardPath(path, k) + ".tmp").c_str());
    }
    return path;
  }

  std::string dir_;
};

// One single-shot entry, the same shape the monolithic recovery tests use.
index::VideoEntry MakeEntry(const std::string& name, bool degraded = false) {
  index::VideoEntry entry;
  entry.name = name;
  shot::Shot s;
  s.index = 0;
  s.end_frame = 29;
  s.rep_frame = 9;
  entry.structure.shots.push_back(s);
  entry.degraded = degraded;
  return entry;
}

util::Status UpsertEntry(ShardedDatabase& db, const std::string& name,
                         bool degraded = false) {
  index::VideoEntry entry = MakeEntry(name, degraded);
  return db.Upsert(entry.name, std::move(entry.structure),
                   std::move(entry.events), entry.degraded);
}

std::set<std::string> Names(const index::VideoDatabase& db) {
  std::set<std::string> names;
  for (int i = 0; i < db.video_count(); ++i) names.insert(db.video(i).name);
  return names;
}

// A name that ShardOfName maps to `shard` (videoN series).
std::string NameInShard(int shard, int shard_count, int skip = 0) {
  for (int i = 0;; ++i) {
    const std::string name = "video" + std::to_string(i);
    if (index::ShardOfName(name, shard_count) == shard && skip-- == 0) {
      return name;
    }
  }
}

const char* const kAppendSites[] = {"index.shard.append.write",
                                    "index.shard.append.fsync"};
const char* const kCompactSites[] = {
    "index.shard.compact.write", "index.shard.compact.fsync",
    "index.shard.compact.rename", "index.shard.compact.manifest"};

// ---------------------------------------------------------------------------
// Round trips.

TEST_F(ShardTest, CreateUpsertReopenRoundTrips) {
  const std::string path = FreshDbPath("roundtrip");
  ShardedDatabase::Options options;
  options.shard_count = 4;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> created =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(created.ok()) << created.status().message();
  ASSERT_EQ((*created)->shard_count(), 4);

  std::set<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "video" + std::to_string(i);
    ASSERT_TRUE(UpsertEntry(**created, name).ok());
    expected.insert(name);
  }
  EXPECT_EQ((*created)->live_count(), 12);
  EXPECT_EQ(Names((*created)->Snapshot()), expected);

  // Reopen from disk: same content, no fallback, no salvage.
  util::SalvageReport report;
  ShardedDatabase::OpenReport open_report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path, &report, &open_report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(Names((*reopened)->Snapshot()), expected);
  EXPECT_FALSE(open_report.any_backup());
  EXPECT_FALSE(open_report.any_salvaged());
  EXPECT_FALSE(open_report.any_lost());

  // The persist entry points dispatch on the root magic.
  EXPECT_TRUE(index::IsShardedDatabasePath(path));
  const util::StatusOr<index::VideoDatabase> loaded =
      index::LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(Names(*loaded), expected);
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_TRUE(verify.sharded);
  EXPECT_EQ(verify.shards, 4);
  EXPECT_EQ(verify.videos, 12);
}

TEST_F(ShardTest, UpsertReplacesAndTombstoneRemoves) {
  const std::string path = FreshDbPath("tombstone");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());

  ASSERT_TRUE(UpsertEntry(**db, "alpha").ok());
  ASSERT_TRUE(UpsertEntry(**db, "beta").ok());
  // Replacing appends a superseding record; the old one becomes dead.
  ASSERT_TRUE(UpsertEntry(**db, "alpha", /*degraded=*/true).ok());
  EXPECT_EQ((*db)->live_count(), 2);
  EXPECT_EQ((*db)->dead_records(), 1u);

  ASSERT_TRUE((*db)->Remove("beta").ok());
  EXPECT_FALSE((*db)->Contains("beta"));
  EXPECT_EQ((*db)->live_count(), 1);
  // The tombstone and the record it erased are both dead now.
  EXPECT_EQ((*db)->dead_records(), 3u);
  EXPECT_EQ((*db)->Remove("beta").code(), StatusCode::kNotFound);

  // Replay on reopen applies the same supersede/erase order.
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  const index::VideoDatabase snap = (*reopened)->Snapshot();
  ASSERT_EQ(snap.video_count(), 1);
  EXPECT_EQ(snap.video(0).name, "alpha");
  EXPECT_TRUE(snap.video(0).degraded);
  EXPECT_EQ((*reopened)->dead_records(), 3u);
}

TEST_F(ShardTest, ShardOfNameIsStableAndSpreadsEntries) {
  std::set<int> used;
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "video" + std::to_string(i);
    const int shard = index::ShardOfName(name, 8);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    ASSERT_EQ(shard, index::ShardOfName(name, 8));  // deterministic
    used.insert(shard);
  }
  // 1000 names over 8 shards must touch every shard.
  EXPECT_EQ(used.size(), 8u);
}

// ---------------------------------------------------------------------------
// Torn tails and per-shard degradation.

TEST_F(ShardTest, TornTailIsResyncedAndTruncatedOnOpen) {
  const std::string path = FreshDbPath("torn_tail");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string victim = NameInShard(0, 2);
  const std::string other = NameInShard(1, 2);
  ASSERT_TRUE(UpsertEntry(**db, victim).ok());
  ASSERT_TRUE(UpsertEntry(**db, other).ok());
  db->reset();

  // A crash mid-append leaves a torn frame at the tail of one shard log.
  const std::string log = index::ShardPath(path, 0);
  std::vector<uint8_t> bytes = *util::ReadFile(log);
  const size_t intact = bytes.size();
  for (int i = 0; i < 37; ++i) bytes.push_back(0xAD);
  ASSERT_TRUE(util::WriteFile(log, bytes).ok());

  util::SalvageReport report;
  ShardedDatabase::OpenReport open_report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path, &report, &open_report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(open_report.shards[0].salvaged);
  EXPECT_FALSE(open_report.shards[1].salvaged);
  EXPECT_GT(report.bytes_dropped, 0u);
  EXPECT_EQ(Names((*reopened)->Snapshot()),
            (std::set<std::string>{victim, other}));

  // The read-write open truncated the torn tail back to the last confirmed
  // frame, so the log is strictly clean again.
  EXPECT_EQ(util::ReadFile(log)->size(), intact);
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
}

TEST_F(ShardTest, CorruptShardFallsBackAloneAndVerifyNamesItsGeneration) {
  const std::string path = FreshDbPath("mixed_gen");
  ShardedDatabase::Options options;
  options.shard_count = 3;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  std::set<std::string> all;
  for (int i = 0; i < 9; ++i) {
    const std::string name = "video" + std::to_string(i);
    ASSERT_TRUE(UpsertEntry(**db, name).ok());
    all.insert(name);
  }
  // Compact shard 1 so it owns a .prev generation, then append one more
  // entry to its new current generation.
  util::StatusOr<ShardedDatabase::CompactionReport> compacted =
      (*db)->CompactShard(1, /*force=*/true);
  ASSERT_TRUE(compacted.ok()) << compacted.status().message();
  const std::string extra = NameInShard(1, 3, /*skip=*/9);
  ASSERT_TRUE(UpsertEntry(**db, extra).ok());
  db->reset();

  // Destroy shard 1's current generation: the library must open with shard
  // 1 served from .prev (losing only `extra`) and every other shard intact.
  ASSERT_EQ(std::remove(index::ShardPath(path, 1).c_str()), 0);
  util::SalvageReport report;
  const util::StatusOr<index::OpenResult> opened =
      index::OpenDatabaseAnyGeneration(path, &report);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_TRUE(opened->used_backup);
  EXPECT_EQ(Names(opened->db), all);

  // Verify pinpoints the damaged shard by name; the other shards do not
  // drag the whole file into "unloadable".
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_FALSE(verify.clean());
  EXPECT_NE(verify.error.find("shard 1"), std::string::npos)
      << verify.ToString();
}

TEST_F(ShardTest, LostShardDegradesTheLibraryInsteadOfKillingIt) {
  const std::string path = FreshDbPath("lost_shard");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string doomed = NameInShard(0, 2);
  const std::string survivor = NameInShard(1, 2);
  ASSERT_TRUE(UpsertEntry(**db, doomed).ok());
  ASSERT_TRUE(UpsertEntry(**db, survivor).ok());
  db->reset();

  // No .prev generation exists yet, so deleting the current log loses the
  // shard outright — the open degrades instead of failing.
  ASSERT_EQ(std::remove(index::ShardPath(path, 0).c_str()), 0);
  util::SalvageReport report;
  ShardedDatabase::OpenReport open_report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path, &report, &open_report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(open_report.shards[0].lost);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(Names((*reopened)->Snapshot()),
            (std::set<std::string>{survivor}));

  // The first write into the lost shard rebuilds its log; the library is
  // pristine again afterwards.
  ASSERT_TRUE(UpsertEntry(**reopened, doomed).ok());
  reopened->reset();
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.videos, 2);
}

TEST_F(ShardTest, ManifestIsReconstructedFromShardHeaders) {
  const std::string path = FreshDbPath("manifest_rebuild");
  ShardedDatabase::Options options;
  options.shard_count = 3;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(UpsertEntry(**db, "video0").ok());
  db->reset();

  ASSERT_EQ(std::remove(path.c_str()), 0);
  EXPECT_TRUE(index::IsShardedDatabasePath(path));  // shard logs identify it
  util::SalvageReport report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*reopened)->shard_count(), 3);
  EXPECT_EQ((*reopened)->live_count(), 1);
  EXPECT_TRUE(report.salvaged);
  reopened->reset();
  // The read-write open rewrote the manifest; the library verifies clean.
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
}

// ---------------------------------------------------------------------------
// Crash matrix: append sites.

TEST_F(ShardTest, AppendCrashMatrixReopensToPreCrashState) {
  for (const char* site : kAppendSites) {
    const std::string path = FreshDbPath(std::string("append_crash_") + site);
    ShardedDatabase::Options options;
    options.shard_count = 2;
    util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
        ShardedDatabase::Create(path, options);
    ASSERT_TRUE(db.ok()) << site;
    ASSERT_TRUE(UpsertEntry(**db, "stable").ok()) << site;

    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    EXPECT_FALSE(UpsertEntry(**db, "casualty").ok()) << site;
    FailPoint::DisarmAll();
    EXPECT_EQ(FailPoint::FailureCount(site), 0);  // disarmed clears counts

    // In-process state rolled back with the file.
    EXPECT_FALSE((*db)->Contains("casualty")) << site;
    EXPECT_EQ((*db)->live_count(), 1) << site;

    // Reopen sees the pre-crash state: one entry, strictly clean logs.
    util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
        ShardedDatabase::Open(path);
    ASSERT_TRUE(reopened.ok()) << site << ": " << reopened.status().message();
    EXPECT_EQ(Names((*reopened)->Snapshot()),
              (std::set<std::string>{"stable"}))
        << site;
    EXPECT_TRUE(index::VerifyDatabaseFile(path).clean()) << site;

    // The handle that took the failure keeps working once the fault clears.
    EXPECT_TRUE(UpsertEntry(**db, "casualty").ok()) << site;
    EXPECT_EQ((*db)->live_count(), 2) << site;
  }
}

// ---------------------------------------------------------------------------
// Crash matrix: compaction sites.

TEST_F(ShardTest, CompactionCrashMatrixReopensToConsistentState) {
  for (const char* site : kCompactSites) {
    const std::string path = FreshDbPath(std::string("compact_crash_") + site);
    ShardedDatabase::Options options;
    options.shard_count = 2;
    util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
        ShardedDatabase::Create(path, options);
    ASSERT_TRUE(db.ok()) << site;
    const std::string name = NameInShard(0, 2);
    const std::string other = NameInShard(1, 2);
    // Two upserts of the same name leave one dead record to fold away.
    ASSERT_TRUE(UpsertEntry(**db, name).ok()) << site;
    ASSERT_TRUE(UpsertEntry(**db, name, /*degraded=*/false).ok()) << site;
    ASSERT_TRUE(UpsertEntry(**db, other).ok()) << site;
    const std::set<std::string> expected = Names((*db)->Snapshot());

    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    const util::StatusOr<ShardedDatabase::CompactionReport> crashed =
        (*db)->CompactShard(0);
    FailPoint::DisarmAll();
    EXPECT_FALSE(crashed.ok()) << site;
    db->reset();

    // Whatever the crash point, the reopen yields the same logical library:
    // compaction only rewrites representation, so pre- and post-crash
    // states agree on content — a torn mixture is the only wrong answer.
    util::SalvageReport report;
    const util::StatusOr<index::OpenResult> opened =
        index::OpenDatabaseAnyGeneration(path, &report);
    ASSERT_TRUE(opened.ok()) << site << ": " << opened.status().message();
    EXPECT_EQ(Names(opened->db), expected) << site;

    // After the fault clears, compaction completes and the library is
    // pristine: no dead records, manifest in step with every log.
    util::StatusOr<std::unique_ptr<ShardedDatabase>> healed =
        ShardedDatabase::Open(path);
    ASSERT_TRUE(healed.ok()) << site;
    const util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
        compacted = (*healed)->CompactAll();
    ASSERT_TRUE(compacted.ok()) << site << ": " << compacted.status().message();
    EXPECT_EQ((*healed)->dead_records(), 0u) << site;
    EXPECT_EQ(Names((*healed)->Snapshot()), expected) << site;
    healed->reset();
    const index::VerifyReport verify = index::VerifyDatabaseFile(path);
    EXPECT_TRUE(verify.clean()) << site << ": " << verify.ToString();
  }
}

TEST_F(ShardTest, CrashBetweenCompactionRenamesFallsBackToPrev) {
  const std::string path = FreshDbPath("compact_manifest_stale");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string name = NameInShard(0, 2);
  ASSERT_TRUE(UpsertEntry(**db, name).ok());
  ASSERT_TRUE(UpsertEntry(**db, name).ok());  // one dead record

  // Crash after the new generation landed but before the manifest refresh:
  // the shard log is already generation 2 while the manifest still records
  // generation 1 — stale, and verify says exactly which shard.
  FailPoint::Arm("index.shard.compact.manifest",
                 FailPoint::Spec::Once(StatusCode::kDataLoss));
  EXPECT_FALSE((*db)->CompactShard(0).ok());
  FailPoint::DisarmAll();
  db->reset();

  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.loadable) << verify.ToString();
  EXPECT_FALSE(verify.manifest_matches);
  EXPECT_NE(verify.stale_detail.find("shard 0 log generation 2"),
            std::string::npos)
      << verify.ToString();
  EXPECT_NE(verify.stale_detail.find("manifest records 1"),
            std::string::npos)
      << verify.ToString();

  // Staleness is advisory: the open succeeds, and the next compaction
  // brings the manifest back in step.
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->live_count(), 1);
  ASSERT_TRUE((*reopened)->CompactAll(/*force=*/true).ok());
  reopened->reset();
  EXPECT_TRUE(index::VerifyDatabaseFile(path).clean());
}

TEST_F(ShardTest, OpenSiteInjectsPerShardFallback) {
  const std::string path = FreshDbPath("open_site");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string name0 = NameInShard(0, 2);
  const std::string name1 = NameInShard(1, 2);
  ASSERT_TRUE(UpsertEntry(**db, name0).ok());
  ASSERT_TRUE(UpsertEntry(**db, name1).ok());
  // Give both shards a .prev generation so the injected outage has a
  // fallback to land on.
  ASSERT_TRUE((*db)->CompactAll(/*force=*/true).ok());
  db->reset();

  // The first shard to check the site takes the injected failure of its
  // current generation and falls back to .prev; the other loads clean.
  FailPoint::Arm("index.shard.open",
                 FailPoint::Spec::Once(StatusCode::kUnavailable));
  util::SalvageReport report;
  ShardedDatabase::OpenReport open_report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path, &report, &open_report);
  FailPoint::DisarmAll();
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(open_report.any_backup());
  EXPECT_EQ(Names((*reopened)->Snapshot()),
            (std::set<std::string>{name0, name1}));
}

// ---------------------------------------------------------------------------
// Compaction racing concurrent upserts.

TEST_F(ShardTest, CompactionRacesConcurrentUpsertsWithoutLosingWrites) {
  const std::string path = FreshDbPath("compact_race");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> created =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(created.ok());
  ShardedDatabase& db = **created;

  constexpr int kWrites = 60;
  std::set<std::string> expected;
  for (int i = 0; i < kWrites; ++i) {
    expected.insert("video" + std::to_string(i));
  }

  std::thread writer([&db] {
    for (int i = 0; i < kWrites; ++i) {
      // Every name is written twice so compaction always has dead records
      // to fold while the writer is still appending.
      const std::string name = "video" + std::to_string(i);
      ASSERT_TRUE(UpsertEntry(db, name).ok());
      ASSERT_TRUE(UpsertEntry(db, name).ok());
    }
  });
  std::thread compactor([&db] {
    for (int round = 0; round < 25; ++round) {
      const util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
          reports = db.CompactAll(/*force=*/true);
      ASSERT_TRUE(reports.ok()) << reports.status().message();
    }
  });
  writer.join();
  compactor.join();

  EXPECT_EQ(Names(db.Snapshot()), expected);

  // A final compaction settles generation counters, and the on-disk state
  // replays to exactly the same library.
  ASSERT_TRUE(db.CompactAll(/*force=*/true).ok());
  created->reset();
  util::StatusOr<std::unique_ptr<ShardedDatabase>> reopened =
      ShardedDatabase::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(Names((*reopened)->Snapshot()), expected);
  reopened->reset();
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.videos, kWrites);
}

// ---------------------------------------------------------------------------
// Repair and full-save dispatch over shards.

TEST_F(ShardTest, SaveDatabaseDispatchKeepsTheShardedLayout) {
  const std::string path = FreshDbPath("save_dispatch");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  ASSERT_TRUE(ShardedDatabase::Create(path, options).ok());

  index::VideoDatabase db;
  for (int i = 0; i < 6; ++i) {
    index::VideoEntry entry = MakeEntry("video" + std::to_string(i));
    db.AddVideo(entry.name, std::move(entry.structure), {}, false);
  }
  ASSERT_TRUE(index::SaveDatabase(db, path).ok());
  EXPECT_TRUE(index::IsShardedDatabasePath(path));
  const util::StatusOr<index::VideoDatabase> loaded =
      index::LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video_count(), 6);
  EXPECT_TRUE(index::VerifyDatabaseFile(path).clean());
}

TEST_F(ShardTest, RepairPromotesASalvagedShardAndStaysSharded) {
  const std::string path = FreshDbPath("repair_sharded");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string a = NameInShard(0, 2);
  const std::string b = NameInShard(0, 2, /*skip=*/1);
  const std::string c = NameInShard(1, 2);
  ASSERT_TRUE(UpsertEntry(**db, a).ok());
  ASSERT_TRUE(UpsertEntry(**db, b).ok());
  ASSERT_TRUE(UpsertEntry(**db, c).ok());
  db->reset();

  // Flip a byte inside shard 0's first entry body: strict verify fails,
  // salvage resynchronises onto the second entry.
  const std::string log = index::ShardPath(path, 0);
  std::vector<uint8_t> bytes = *util::ReadFile(log);
  bytes[bytes.size() / 2] ^= 0xFF;
  ASSERT_TRUE(util::WriteFile(log, bytes).ok());
  EXPECT_FALSE(index::VerifyDatabaseFile(path).clean());

  // Repair opens any generation (salvaging shard 0), rewrites through the
  // SaveDatabase dispatch, and the library must still be sharded after.
  const util::StatusOr<index::RepairReport> report =
      index::RepairDatabaseFile(path, index::RemineFn(), nullptr);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->rewritten);
  EXPECT_TRUE(index::IsShardedDatabasePath(path));
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.videos, 2);  // the bit-flipped entry was dropped
  EXPECT_EQ(verify.shards, 2);
}

// ---------------------------------------------------------------------------
// CompactDatabaseFile convenience (scrubber / ops / CLI entry point).

TEST_F(ShardTest, CompactDatabaseFileFoldsOnlyDirtyShards) {
  const std::string path = FreshDbPath("compact_file");
  ShardedDatabase::Options options;
  options.shard_count = 2;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Create(path, options);
  ASSERT_TRUE(db.ok());
  const std::string churner = NameInShard(0, 2);
  const std::string still = NameInShard(1, 2);
  ASSERT_TRUE(UpsertEntry(**db, churner).ok());
  ASSERT_TRUE(UpsertEntry(**db, churner).ok());  // dead record in shard 0
  ASSERT_TRUE(UpsertEntry(**db, still).ok());
  db->reset();

  const util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
      reports = index::CompactDatabaseFile(path);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_FALSE((*reports)[0].skipped);
  EXPECT_EQ((*reports)[0].dead_dropped, 1u);
  EXPECT_TRUE((*reports)[1].skipped);  // nothing dead in shard 1

  // Monolithic files are refused, not silently rewritten.
  const std::string mono = FreshDbPath("compact_mono");
  index::VideoDatabase monodb;
  index::VideoEntry entry = MakeEntry("only");
  monodb.AddVideo(entry.name, std::move(entry.structure), {}, false);
  ASSERT_TRUE(index::SaveDatabase(monodb, mono).ok());
  EXPECT_EQ(index::CompactDatabaseFile(mono).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace classminer

// classminerd end-to-end: wire framing, the session handshake, the
// per-session permission matrix, admission control, deadlines, graceful
// drain, and byte-identity between server responses and the shared
// operation layer the CLI prints from.

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cmv_pipeline.h"
#include "gtest/gtest.h"
#include "index/database.h"
#include "index/persist.h"
#include "server/client.h"
#include "server/ops.h"
#include "server/protocol.h"
#include "server/scrubber.h"
#include "server/server.h"
#include "server/wire.h"
#include "synth/corpus.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace classminer::server {
namespace {

using util::Status;
using util::StatusCode;

std::string TestContainer(const std::string& name, uint64_t seed) {
  const std::string path = ::testing::TempDir() + "/" + name;
  const synth::GeneratedVideo g = synth::GenerateVideo(synth::QuickScript(seed));
  const codec::CmvFile file = core::PackGeneratedVideo(g);
  EXPECT_TRUE(file.SaveToFile(path).ok());
  return path;
}

SessionHello MakeHello(const std::string& user, int clearance) {
  SessionHello hello;
  hello.user = user;
  hello.clearance = clearance;
  return hello;
}

// ---------------------------------------------------------------------------
// Protocol serialization

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.kind = RequestKind::kMine;
  request.deadline_ms = 1500;
  request.args = {"clip.cmv", "--fast"};
  util::StatusOr<std::vector<uint8_t>> bytes = request.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<Request> parsed = Request::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, RequestKind::kMine);
  EXPECT_EQ(parsed->deadline_ms, 1500u);
  EXPECT_EQ(parsed->args, request.args);
}

TEST(ProtocolTest, ResponseRoundTripIncludingNewCode) {
  Response response;
  response.code = StatusCode::kDeadlineExceeded;
  response.message = "too slow";
  response.body = "partial report\n";
  util::StatusOr<std::vector<uint8_t>> bytes = response.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<Response> parsed = Response::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(parsed->message, "too slow");
  EXPECT_EQ(parsed->body, "partial report\n");
}

TEST(ProtocolTest, HelloRoundTripCarriesCredential) {
  SessionHello hello = MakeHello("dr_lee", 2);
  hello.denied_nodes = {4, 9};
  util::StatusOr<std::string> bytes = hello.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<SessionHello> parsed = SessionHello::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->user, "dr_lee");
  EXPECT_EQ(parsed->clearance, 2);
  const index::UserCredential credential = parsed->ToCredential();
  EXPECT_EQ(credential.name, "dr_lee");
  EXPECT_EQ(credential.clearance, 2);
  EXPECT_EQ(credential.denied_nodes.count(4), 1u);
  EXPECT_EQ(credential.denied_nodes.count(9), 1u);
}

TEST(ProtocolTest, ParseRejectsDamage) {
  Request request;
  request.kind = RequestKind::kSkim;
  request.args = {"a.cmv"};
  std::vector<uint8_t> bytes = *request.Serialize();
  // Unknown kind byte.
  std::vector<uint8_t> bad_kind = bytes;
  bad_kind[0] = 0x7f;
  EXPECT_FALSE(Request::Parse(bad_kind).ok());
  // Truncation inside the argument list.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 2);
  EXPECT_FALSE(Request::Parse(truncated).ok());
  // Trailing junk after a well-formed request.
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(Request::Parse(trailing).ok());
  // An arg count claiming more entries than the frame could hold.
  std::vector<uint8_t> lying = bytes;
  lying[5] = 0xff;  // arg count low byte (offset: kind 1 + deadline 4)
  EXPECT_FALSE(Request::Parse(lying).ok());

  std::vector<uint8_t> resp_bytes = *MakeResponse(Status::Ok()).Serialize();
  resp_bytes[0] = 0xee;  // out-of-range status code
  EXPECT_FALSE(Response::Parse(resp_bytes).ok());
}

TEST(ProtocolTest, RequestKindNamesRoundTrip) {
  for (int k = 0; k < kRequestKindCount; ++k) {
    const RequestKind kind = static_cast<RequestKind>(k);
    util::StatusOr<RequestKind> parsed =
        ParseRequestKind(RequestKindName(kind));
    ASSERT_TRUE(parsed.ok()) << RequestKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseRequestKind("reboot").ok());
}

// ---------------------------------------------------------------------------
// Wire framing over a socketpair: short reads/writes must resume.

TEST(WireTest, FrameSurvivesDribbledDelivery) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  Request request;
  request.kind = RequestKind::kBrowse;
  request.args = {std::string(10000, 'x'), "--strict"};
  std::vector<uint8_t> body = *request.Serialize();

  // Frame bytes trickled a few at a time across many send() calls: the
  // reader's RecvAll must resume across every short read.
  std::thread writer([&] {
    uint8_t header[12];
    const uint32_t size = static_cast<uint32_t>(body.size());
    const uint32_t crc = util::Crc32(body);
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>((kRequestMagic >> (8 * i)) & 0xff);
      header[4 + i] = static_cast<uint8_t>((size >> (8 * i)) & 0xff);
      header[8 + i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
    }
    std::vector<uint8_t> frame(header, header + 12);
    frame.insert(frame.end(), body.begin(), body.end());
    for (size_t off = 0; off < frame.size(); off += 7) {
      const size_t n = std::min<size_t>(7, frame.size() - off);
      ASSERT_TRUE(SendAll(fds[1], frame.data() + off, n).ok());
    }
    close(fds[1]);
  });

  util::StatusOr<std::vector<uint8_t>> got =
      ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, body);
  close(fds[0]);
}

TEST(WireTest, CorruptFrameIsDataLossAndHangupIsUnavailable) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> body = {1, 2, 3, 4};
  ASSERT_TRUE(WriteFrame(fds[1], kRequestMagic, body, kMaxFrameBytes).ok());
  // Wrong expected magic -> kDataLoss.
  util::StatusOr<std::vector<uint8_t>> got =
      ReadFrame(fds[0], kResponseMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  close(fds[0]);
  close(fds[1]);

  // Peer hangup before any byte -> kUnavailable (normal close); hangup
  // mid-frame -> kDataLoss (a torn frame is damage, not a clean goodbye).
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[1]);
  got = ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  close(fds[0]);

  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const uint8_t partial[3] = {0x43, 0x4d, 0x52};  // first bytes of "CMRQ"
  ASSERT_TRUE(SendAll(fds[1], partial, sizeof(partial)).ok());
  close(fds[1]);
  got = ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  close(fds[0]);
}

TEST(WireTest, OversizedFrameRefusedBothSides) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> big(1024);
  EXPECT_EQ(WriteFrame(fds[1], kRequestMagic, big, 512).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(WriteFrame(fds[1], kRequestMagic, big, 4096).ok());
  EXPECT_EQ(ReadFrame(fds[0], kRequestMagic, 512).status().code(),
            StatusCode::kDataLoss);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Server end-to-end

class ServerTest : public ::testing::Test {
 protected:
  // Starts a server with `options` (host/port forced to loopback/ephemeral).
  void StartServer(ServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<ClassMinerServer>(std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  util::StatusOr<Client> Connect(const SessionHello& hello) {
    return Client::Connect("127.0.0.1", server_->port(), hello);
  }

  std::unique_ptr<ClassMinerServer> server_;
};

TEST_F(ServerTest, HelloRequiredBeforeAnyRequest) {
  StartServer();
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  Request request;
  request.kind = RequestKind::kVerify;
  request.args = {"whatever.cmdb"};
  ASSERT_TRUE(
      WriteFrame(*fd, kRequestMagic, *request.Serialize(), kMaxFrameBytes)
          .ok());
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> response = Response::Parse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kFailedPrecondition);
  CloseFd(*fd);
}

TEST_F(ServerTest, PermissionMatrixOverAllRequestKinds) {
  const std::string cmv = TestContainer("perm.cmv", 3);
  StartServer();
  // Default clearance floor per kind: mine 1, browse 0, skim 0,
  // verify 2, repair 3.
  const struct {
    RequestKind kind;
    int required;
    std::vector<std::string> args;
  } kCases[] = {
      {RequestKind::kMine, 1, {cmv}},
      {RequestKind::kBrowse, 0, {cmv}},
      {RequestKind::kSkim, 0, {cmv}},
      {RequestKind::kVerify, 2, {"absent.cmdb"}},
      {RequestKind::kRepair, 3, {"absent.cmdb"}},
  };
  for (int clearance = 0; clearance <= 3; ++clearance) {
    util::StatusOr<Client> client =
        Connect(MakeHello("matrix", clearance));
    ASSERT_TRUE(client.ok());
    for (const auto& c : kCases) {
      Request request;
      request.kind = c.kind;
      request.args = c.args;
      util::StatusOr<Response> response = client->Call(request);
      ASSERT_TRUE(response.ok()) << RequestKindName(c.kind);
      if (clearance < c.required) {
        EXPECT_EQ(response->code, StatusCode::kPermissionDenied)
            << RequestKindName(c.kind) << " at clearance " << clearance;
      } else {
        EXPECT_NE(response->code, StatusCode::kPermissionDenied)
            << RequestKindName(c.kind) << " at clearance " << clearance;
      }
    }
  }
  const ServerStats stats = server_->StatsSnapshot();
  // clearance 0 denies mine+verify+repair, 1 denies verify+repair,
  // 2 denies repair, 3 denies nothing.
  EXPECT_EQ(stats.permission_denied, 6u);
}

TEST_F(ServerTest, RootDenialDisablesTheAccount) {
  const std::string cmv = TestContainer("denied.cmv", 4);
  StartServer();
  SessionHello hello = MakeHello("blocked", 3);
  hello.denied_nodes = {0};  // denied the concept root
  util::StatusOr<Client> client = Connect(hello);
  ASSERT_TRUE(client.ok());
  util::StatusOr<std::string> report =
      client->CallForReport(RequestKind::kBrowse, {cmv});
  EXPECT_EQ(report.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ServerTest, ResponsesByteIdenticalToOpsLayerAcross8Clients) {
  const std::string cmv = TestContainer("identity.cmv", 7);
  StartServer();

  // The expected bytes are what the CLI prints: the shared ops layer.
  const OpEnv env;
  const OpResult mine = MineOp(cmv, /*fast=*/false, /*strict=*/false, env,
                               nullptr);
  ASSERT_TRUE(mine.ok());
  const OpResult skim = SkimOp(cmv, 3, env, nullptr);
  ASSERT_TRUE(skim.ok());
  index::UserCredential user;
  user.name = "reader";
  user.clearance = 3;
  const OpResult browse = BrowseOp({cmv}, /*strict=*/false, user, env,
                                   nullptr);
  ASSERT_TRUE(browse.ok());

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      util::StatusOr<Client> client = Connect(MakeHello("reader", 3));
      if (!client.ok()) {
        ++mismatches;
        return;
      }
      const struct {
        RequestKind kind;
        std::vector<std::string> args;
        const std::string* want;
      } kCalls[] = {
          {RequestKind::kMine, {cmv}, &mine.report},
          {RequestKind::kSkim, {cmv, "3"}, &skim.report},
          {RequestKind::kBrowse, {cmv}, &browse.report},
      };
      // Stagger which call each client starts with, so all five kinds are
      // in flight together.
      for (int j = 0; j < 3; ++j) {
        const auto& call = kCalls[(i + j) % 3];
        util::StatusOr<std::string> got =
            client->CallForReport(call.kind, call.args);
        if (!got.ok() || *got != *call.want) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server_->StatsSnapshot();
  // Hellos are answered before dispatch; the 3 ops per client all succeed.
  EXPECT_EQ(stats.requests_ok, static_cast<uint64_t>(kClients * 3));
}

TEST_F(ServerTest, AdmissionControlRejectsPastTheQueueBound) {
  const std::string cmv = TestContainer("admission.cmv", 9);

  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 1;
  // All three clients skim the same container; with the cache on, B and C
  // would join A's single flight and never face admission control.
  options.enable_result_cache = false;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();  // holds the only worker busy
    }
  };
  StartServer(std::move(options));

  // Request A occupies the worker.
  util::StatusOr<Client> a = Connect(MakeHello("a", 3));
  ASSERT_TRUE(a.ok());
  std::thread blocked([&] {
    (void)a->CallForReport(RequestKind::kSkim, {cmv});
  });
  first_started.get_future().wait();

  // Request B fills the queue slot of 1.
  util::StatusOr<Client> b = Connect(MakeHello("b", 3));
  ASSERT_TRUE(b.ok());
  std::thread queued([&] {
    (void)b->CallForReport(RequestKind::kSkim, {cmv});
  });
  // B must be admitted (queued) before C can be rejected deterministically.
  while (server_->StatsSnapshot().requests_admitted < 2) {  // A + B
    std::this_thread::yield();
  }

  // Request C finds the queue full -> kUnavailable, immediately.
  util::StatusOr<Client> c = Connect(MakeHello("c", 3));
  ASSERT_TRUE(c.ok());
  util::StatusOr<std::string> rejected =
      c->CallForReport(RequestKind::kSkim, {cmv});
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // kUnavailable is exactly what util::Retry retries: once the worker is
  // released, the same request goes through.
  release_first.set_value();
  util::RetryOptions retry;
  retry.max_attempts = 50;
  retry.initial_backoff_ms = 5.0;
  retry.max_backoff_ms = 50.0;
  util::StatusOr<std::string> report = util::RetryOr<std::string>(
      retry, [&]() -> util::StatusOr<std::string> {
        return c->CallForReport(RequestKind::kSkim, {cmv});
      });
  EXPECT_TRUE(report.ok()) << report.status().ToString();

  blocked.join();
  queued.join();
  EXPECT_GE(server_->StatsSnapshot().rejected_admission, 1u);
}

TEST_F(ServerTest, DeadlineExpiredInQueueNeverExecutes) {
  const std::string cmv = TestContainer("deadline.cmv", 11);

  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 4;
  // B skims the same container as A; joining A's flight would bypass the
  // queue (and its deadline check) entirely.
  options.enable_result_cache = false;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<Client> a = Connect(MakeHello("a", 3));
  ASSERT_TRUE(a.ok());
  std::thread blocked([&] {
    (void)a->CallForReport(RequestKind::kSkim, {cmv});
  });
  first_started.get_future().wait();

  // Queued behind the blocked worker with a 1 ms deadline: by the time the
  // worker frees, the deadline has long passed.
  util::StatusOr<Client> b = Connect(MakeHello("b", 3));
  ASSERT_TRUE(b.ok());
  std::thread waiter([&] {
    util::StatusOr<std::string> report =
        b->CallForReport(RequestKind::kSkim, {cmv}, /*deadline_ms=*/1);
    EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (server_->StatsSnapshot().requests_admitted < 2) {  // A + B
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_first.set_value();
  blocked.join();
  waiter.join();
  EXPECT_GE(server_->StatsSnapshot().deadline_exceeded, 1u);
}

TEST_F(ServerTest, GracefulStopDrainsInFlightRequests) {
  const std::string cmv = TestContainer("drain.cmv", 13);

  std::promise<void> started_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 2;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      started_promise.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<Client> client = Connect(MakeHello("drain", 3));
  ASSERT_TRUE(client.ok());
  util::StatusOr<std::string> report = Status::Internal("never ran");
  std::thread in_flight([&] {
    report = client->CallForReport(RequestKind::kSkim, {cmv});
  });
  started_promise.get_future().wait();

  // Stop while the request is mid-flight: it must still complete and flush
  // its response before Stop returns.
  std::thread stopper([&] { server_->Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_promise.set_value();
  stopper.join();
  in_flight.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_EQ(stats.connections_active, 0u);  // no leaked connections
  EXPECT_GE(stats.requests_ok, 1u);
}

TEST_F(ServerTest, ConnectionCapacityRefusesTheExtraSession) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(std::move(options));

  util::StatusOr<Client> first = Connect(MakeHello("one", 1));
  ASSERT_TRUE(first.ok());
  util::StatusOr<Client> second = Connect(MakeHello("two", 1));
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server_->StatsSnapshot().connections_rejected, 1u);
}

TEST_F(ServerTest, VerifyCarriesItsReportEvenWhenDirty) {
  StartServer();
  util::StatusOr<Client> client = Connect(MakeHello("admin", 3));
  ASSERT_TRUE(client.ok());
  Request request;
  request.kind = RequestKind::kVerify;
  request.args = {::testing::TempDir() + "/no_such.cmdb"};
  util::StatusOr<Response> response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kDataLoss);
  // The body is the same report the CLI prints before exiting non-zero.
  const OpResult expected = VerifyOp(request.args[0]);
  EXPECT_EQ(response->body, expected.report);
  EXPECT_FALSE(response->body.empty());
}

// ---------------------------------------------------------------------------
// Protocol v2: pipelining, streaming, the shared result cache.

TEST(ProtocolTest, TaggedRequestAndChunkRoundTrip) {
  Request request;
  request.kind = RequestKind::kSkim;
  request.deadline_ms = 250;
  request.args = {"a.cmv", "2"};
  request.request_id = 0xdeadbeef;
  util::StatusOr<std::vector<uint8_t>> bytes = request.SerializeTagged();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(PeekRequestId(*bytes), 0xdeadbeefu);
  util::StatusOr<Request> parsed = Request::ParseTagged(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 0xdeadbeefu);
  EXPECT_EQ(parsed->kind, RequestKind::kSkim);
  EXPECT_EQ(parsed->args, request.args);
  // A v1 parse of a v2 body must fail (the tag is not silently eaten).
  EXPECT_FALSE(Request::Parse(*bytes).ok());

  Response chunk;
  chunk.request_id = 7;
  chunk.final_chunk = false;
  chunk.body = "fragment";
  util::StatusOr<std::vector<uint8_t>> cb = chunk.SerializeChunk();
  ASSERT_TRUE(cb.ok());
  util::StatusOr<Response> back = Response::ParseChunk(*cb);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 7u);
  EXPECT_FALSE(back->final_chunk);
  EXPECT_EQ(back->body, "fragment");
  // Reserved flag bits must be zero.
  (*cb)[4] |= 0x02;
  EXPECT_FALSE(Response::ParseChunk(*cb).ok());
}

TEST_F(ServerTest, PipelinedResponsesCompleteOutOfOrder) {
  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 2;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<std::unique_ptr<PipelinedClient>> client =
      PipelinedClient::Connect("127.0.0.1", server_->port(),
                               MakeHello("pipeline", 3));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // A enters the worker first and blocks there; B, sent after, overtakes it.
  Request a;
  a.kind = RequestKind::kVerify;
  a.args = {::testing::TempDir() + "/oo_a.cmdb"};
  std::future<util::StatusOr<Response>> fa = (*client)->AsyncCall(a);
  first_started.get_future().wait();

  Request b;
  b.kind = RequestKind::kVerify;
  b.args = {::testing::TempDir() + "/oo_b.cmdb"};
  std::future<util::StatusOr<Response>> fb = (*client)->AsyncCall(b);

  ASSERT_EQ(fb.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fa.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);  // A is still held in the hook
  release_first.set_value();

  util::StatusOr<Response> ra = fa.get();
  util::StatusOr<Response> rb = fb.get();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Both carry their own database path: tags kept request<->response pairing
  // intact across the reordering.
  EXPECT_NE(ra->body.find("oo_a.cmdb"), std::string::npos);
  EXPECT_NE(rb->body.find("oo_b.cmdb"), std::string::npos);
  EXPECT_GE(server_->StatsSnapshot().requests_pipelined, 1u);
}

TEST_F(ServerTest, StreamedPipelinedResponsesReassembleByteIdentical) {
  const std::string cmv_a = TestContainer("stream_a.cmv", 17);
  const std::string cmv_b = TestContainer("stream_b.cmv", 19);

  ServerOptions options;
  options.worker_threads = 2;
  options.stream_chunk_bytes = 32;  // force many interleaved chunks
  StartServer(std::move(options));

  const OpEnv env;
  const OpResult want_a = SkimOp(cmv_a, 3, env, nullptr);
  const OpResult want_b = SkimOp(cmv_b, 3, env, nullptr);
  ASSERT_TRUE(want_a.ok());
  ASSERT_TRUE(want_b.ok());

  util::StatusOr<std::unique_ptr<PipelinedClient>> client =
      PipelinedClient::Connect("127.0.0.1", server_->port(),
                               MakeHello("streams", 3));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Request a;
  a.kind = RequestKind::kSkim;
  a.args = {cmv_a};
  Request b;
  b.kind = RequestKind::kSkim;
  b.args = {cmv_b};
  std::future<util::StatusOr<Response>> fa = (*client)->AsyncCall(a);
  std::future<util::StatusOr<Response>> fb = (*client)->AsyncCall(b);
  util::StatusOr<Response> ra = fa.get();
  util::StatusOr<Response> rb = fb.get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_TRUE(ra->ok()) << ra->message;
  ASSERT_TRUE(rb->ok()) << rb->message;
  // Chunked delivery, interleaved across two in-flight requests on one
  // session, reassembles to exactly the v1 / ops-layer bytes.
  EXPECT_EQ(ra->body, want_a.report);
  EXPECT_EQ(rb->body, want_b.report);
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_GE(stats.responses_streamed, 2u);
}

TEST_F(ServerTest, V1ClientIsServedSeriallyInOrder) {
  StartServer();
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());

  // Hello plus two requests, all on the wire before reading anything: a v1
  // session must see its responses one per request, in request order.
  SessionHello hello = MakeHello("serial", 3);
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args = {*hello.Serialize()};
  Request first;
  first.kind = RequestKind::kVerify;
  first.args = {::testing::TempDir() + "/serial_one.cmdb"};
  Request second;
  second.kind = RequestKind::kVerify;
  second.args = {::testing::TempDir() + "/serial_two.cmdb"};
  for (const Request* r : {&handshake, &first, &second}) {
    ASSERT_TRUE(
        WriteFrame(*fd, kRequestMagic, *r->Serialize(), kMaxFrameBytes).ok());
  }
  std::vector<Response> responses;
  for (int i = 0; i < 3; ++i) {
    util::StatusOr<std::vector<uint8_t>> frame =
        ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    util::StatusOr<Response> response = Response::Parse(*frame);
    ASSERT_TRUE(response.ok());
    responses.push_back(std::move(*response));
  }
  EXPECT_NE(responses[0].body.find("session serial"), std::string::npos);
  EXPECT_NE(responses[1].body.find("serial_one.cmdb"), std::string::npos);
  EXPECT_NE(responses[2].body.find("serial_two.cmdb"), std::string::npos);
  CloseFd(*fd);
}

TEST_F(ServerTest, SingleFlightCacheRunsTheMiningPipelineOnce) {
  const std::string cmv = TestContainer("cache.cmv", 23);

  std::promise<void> leader_started;
  std::promise<void> release_leader;
  std::shared_future<void> release(release_leader.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      leader_started.set_value();
      release.wait();  // holds the leader mid-flight so others can join
    }
  };
  StartServer(std::move(options));

  const OpEnv env;
  const OpResult want = MineOp(cmv, /*fast=*/true, /*strict=*/false, env,
                               nullptr);
  ASSERT_TRUE(want.ok());

  constexpr int kSessions = 4;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      util::StatusOr<Client> client =
          Connect(MakeHello("joiner" + std::to_string(i), 3));
      if (!client.ok()) {
        ++mismatches;
        return;
      }
      util::StatusOr<std::string> got =
          client->CallForReport(RequestKind::kMine, {cmv, "--fast"});
      if (!got.ok() || *got != want.report) ++mismatches;
    });
  }
  leader_started.get_future().wait();
  // Everyone else must have attached to the leader's flight before it runs.
  while (server_->StatsSnapshot().cache_joined <
         static_cast<uint64_t>(kSessions - 1)) {
    std::this_thread::yield();
  }
  release_leader.set_value();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // A later identical request answers from the stored entry.
  util::StatusOr<Client> late = Connect(MakeHello("late", 3));
  ASSERT_TRUE(late.ok());
  util::StatusOr<std::string> cached =
      late->CallForReport(RequestKind::kMine, {cmv, "--fast"});
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, want.report);

  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_EQ(started.load(), 1);  // the pipeline executed exactly once
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_joined, static_cast<uint64_t>(kSessions - 1));
  EXPECT_GE(stats.cache_hits, 1u);
  // Cache-served answers still count as served requests.
  EXPECT_EQ(stats.requests_ok, static_cast<uint64_t>(kSessions + 1));
}

TEST_F(ServerTest, SlowReaderBackpressureBoundsTheWriteQueue) {
  const std::string cmv = TestContainer("slow.cmv", 29);

  ServerOptions options;
  options.stream_chunk_bytes = 32;
  options.max_write_queue_bytes = 64;  // tiny: a ~300 B report must stall
  StartServer(std::move(options));

  const OpEnv env;
  const OpResult want = SkimOp(cmv, 3, env, nullptr);
  ASSERT_TRUE(want.ok());
  ASSERT_GT(want.report.size(), 128u);  // big enough to trip the bound

  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  SessionHello hello = MakeHello("slow", 3);
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args = {*hello.Serialize()};
  handshake.request_id = 1;
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *handshake.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  uint32_t magic = 0;
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
  ASSERT_TRUE(frame.ok());

  Request skim;
  skim.kind = RequestKind::kSkim;
  skim.args = {cmv};
  skim.request_id = 2;
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *skim.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());

  // Do not read. The op fills the socket + write queue to the bound, then
  // its next chunk blocks on backpressure: the response cannot finish.
  while (server_->StatsSnapshot().write_queue_peak_bytes == 0) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ServerStats stalled = server_->StatsSnapshot();
  EXPECT_EQ(stalled.requests_ok, 0u);  // still blocked mid-stream
  // The queue never ran away: bound + one in-flight chunk frame + the
  // posts-in-transit slack (each chunk frame is ~70 bytes here).
  EXPECT_LE(stalled.write_queue_peak_bytes,
            options.max_write_queue_bytes + 512);

  // Now drain like a healthy reader: the stream completes byte-identical.
  std::string body;
  for (;;) {
    frame = ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    util::StatusOr<Response> chunk = Response::ParseChunk(*frame);
    ASSERT_TRUE(chunk.ok());
    ASSERT_EQ(chunk->request_id, 2u);
    body.append(chunk->body);
    if (chunk->final_chunk) {
      EXPECT_EQ(chunk->code, StatusCode::kOk) << chunk->message;
      break;
    }
  }
  EXPECT_EQ(body, want.report);
  EXPECT_EQ(server_->StatsSnapshot().requests_ok, 1u);
  CloseFd(*fd);
}

TEST_F(ServerTest, HoldsAThousandIdleConnectionsWithoutReaderThreads) {
  ServerOptions options;
  options.max_connections = 1100;
  StartServer(std::move(options));

  const auto thread_count = [] {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("Threads:", 0) == 0) {
        return std::stoi(line.substr(8));
      }
    }
    return -1;
  };
  const int threads_before = thread_count();

  constexpr int kIdle = 1024;
  std::vector<int> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok()) << "connection " << i << ": "
                         << fd.status().ToString();
    idle.push_back(*fd);
  }
  // All idle sessions are registered (accepts are processed before the
  // active session below is admitted, but give the reactor a moment).
  while (server_->StatsSnapshot().connections_active <
         static_cast<uint64_t>(kIdle)) {
    std::this_thread::yield();
  }

  // The daemon still serves, and holding 1024 open sockets cost zero
  // additional threads — idle connections are file descriptors, not stacks.
  util::StatusOr<Client> active = Connect(MakeHello("worker", 3));
  ASSERT_TRUE(active.ok()) << active.status().ToString();
  Request request;
  request.kind = RequestKind::kVerify;
  request.args = {::testing::TempDir() + "/idle_probe.cmdb"};
  util::StatusOr<Response> response = active->Call(request);
  ASSERT_TRUE(response.ok());

  const int threads_after = thread_count();
  ASSERT_GT(threads_before, 0);
  EXPECT_EQ(threads_after, threads_before);
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_EQ(stats.reader_threads, 0u);
  EXPECT_EQ(stats.connections_active, static_cast<uint64_t>(kIdle + 1));

  for (int fd : idle) CloseFd(fd);
}

TEST_F(ServerTest, MalformedRequestFrameGetsAnErrorResponse) {
  StartServer();
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // A CRC-valid frame whose body is not a parseable request.
  std::vector<uint8_t> junk = {0x7f, 0x00};
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagic, junk, kMaxFrameBytes).ok());
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> response = Response::Parse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  CloseFd(*fd);
}

// ---------------------------------------------------------------------------
// Chaos hardening: idempotency keys, duplicate-tag rejection, idle reaping,
// error budgets, the health kind, fault-injected transports, the scrubber.

TEST(ProtocolTest, TaggedRequestCarriesIdempotencyKey) {
  Request request;
  request.kind = RequestKind::kRepair;
  request.deadline_ms = 0;
  request.args = {"library.cmdb"};
  request.request_id = 42;
  request.idempotency_key = "rc1-00ff-3-abc";
  util::StatusOr<std::vector<uint8_t>> bytes = request.SerializeTagged();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<Request> parsed = Request::ParseTagged(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->idempotency_key, "rc1-00ff-3-abc");
  EXPECT_EQ(parsed->request_id, 42u);
  EXPECT_EQ(parsed->args, request.args);

  // An absent key round-trips as empty, and trailing junk after the key is
  // still rejected (the strict framing did not move).
  request.idempotency_key.clear();
  bytes = request.SerializeTagged();
  ASSERT_TRUE(bytes.ok());
  parsed = Request::ParseTagged(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->idempotency_key.empty());
  std::vector<uint8_t> trailing = *bytes;
  trailing.push_back(0);
  EXPECT_FALSE(Request::ParseTagged(trailing).ok());
}

TEST_F(ServerTest, DuplicateInFlightRequestIdIsRejected) {
  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 2;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  SessionHello hello = MakeHello("dup", 3);
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args = {*hello.Serialize()};
  handshake.request_id = 1;
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *handshake.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  uint32_t magic = 0;
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
  ASSERT_TRUE(frame.ok());

  // Original request under tag 2 is held in the worker...
  Request verify;
  verify.kind = RequestKind::kVerify;
  verify.args = {::testing::TempDir() + "/dup_orig.cmdb"};
  verify.request_id = 2;
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *verify.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  first_started.get_future().wait();

  // ...so a second request reusing tag 2 is a protocol error, answered
  // immediately without touching the original.
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *verify.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  frame = ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> rejected = Response::ParseChunk(*frame);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->request_id, 2u);
  EXPECT_EQ(rejected->code, StatusCode::kInvalidArgument);
  EXPECT_NE(rejected->message.find("duplicate request_id"),
            std::string::npos);

  // The original still answers once released: the rejection did not free
  // or corrupt its tag.
  release_first.set_value();
  std::string body;
  for (;;) {
    frame = ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
    ASSERT_TRUE(frame.ok());
    util::StatusOr<Response> chunk = Response::ParseChunk(*frame);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk->request_id, 2u);
    body.append(chunk->body);
    if (chunk->final_chunk) break;
  }
  EXPECT_NE(body.find("dup_orig.cmdb"), std::string::npos);

  // Tag 2's lifetime ended with its final answer: reuse is legal now.
  verify.args = {::testing::TempDir() + "/dup_reuse.cmdb"};
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *verify.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  frame = ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> reused = Response::ParseChunk(*frame);
  ASSERT_TRUE(reused.ok());
  EXPECT_NE(reused->code, StatusCode::kInvalidArgument);

  EXPECT_EQ(server_->StatsSnapshot().duplicate_request_ids, 1u);
  CloseFd(*fd);
}

TEST_F(ServerTest, IdleTimeoutReapsSlowLorisButNotBusySessions) {
  std::promise<void> started_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.idle_timeout_ms = 150;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      started_promise.set_value();
      release.wait();  // holds a request in flight well past the timeout
    }
  };
  StartServer(std::move(options));

  // A session with an executing request is busy, not idle — it must
  // survive the reaper even though no bytes move while the worker is held.
  util::StatusOr<Client> busy = Connect(MakeHello("busy", 3));
  ASSERT_TRUE(busy.ok());
  util::StatusOr<std::string> report = Status::Internal("never ran");
  std::thread in_flight([&] {
    report = busy->CallForReport(
        RequestKind::kVerify, {::testing::TempDir() + "/not_idle.cmdb"});
  });
  started_promise.get_future().wait();

  // The slow loris: three bytes of a frame header, then silence. The
  // deadline monitor must flag it and the reactor must close it.
  util::StatusOr<int> loris = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(loris.ok());
  const uint8_t partial[3] = {0x43, 0x4d, 0x51};
  ASSERT_TRUE(SendAll(*loris, partial, sizeof(partial)).ok());
  uint8_t byte;
  ssize_t n;
  do {
    n = recv(*loris, &byte, 1, 0);  // blocks until the server closes
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0);  // EOF: reaped, not answered
  CloseFd(*loris);

  // The held request was never reaped; it completes normally.
  release_promise.set_value();
  in_flight.join();
  EXPECT_TRUE(report.status().code() == StatusCode::kDataLoss ||
              report.ok());  // verify on a missing db is kDataLoss
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_GE(stats.idle_closed, 1u);
}

TEST_F(ServerTest, ErrorBudgetClosesSessionsThatKeepSendingGarbage) {
  ServerOptions options;
  options.max_session_errors = 3;
  StartServer(std::move(options));

  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // Each junk frame is CRC-valid but unparseable: an inline error answer,
  // charged against the session's budget.
  const std::vector<uint8_t> junk = {0x7f, 0x00};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(WriteFrame(*fd, kRequestMagic, junk, kMaxFrameBytes).ok());
  }
  // All three owed error responses still flush before the close.
  for (int i = 0; i < 3; ++i) {
    util::StatusOr<std::vector<uint8_t>> frame =
        ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
    ASSERT_TRUE(frame.ok()) << "error " << i << ": "
                            << frame.status().ToString();
    util::StatusOr<Response> response = Response::Parse(*frame);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  }
  // Past the budget the server hangs up instead of absorbing more abuse.
  uint8_t byte;
  ssize_t n;
  do {
    n = recv(*fd, &byte, 1, 0);
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0);
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_EQ(stats.protocol_errors, 3u);
  EXPECT_EQ(stats.error_budget_closed, 1u);
  CloseFd(*fd);
}

TEST_F(ServerTest, HealthAnswersBeforeHelloAtClearanceZero) {
  StartServer();

  // Health needs no hello and no clearance: it must work on a raw v2
  // session as the very first frame (that is what a load balancer probe
  // looks like).
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  Request probe;
  probe.kind = RequestKind::kHealth;
  probe.request_id = 1;
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagicV2, *probe.SerializeTagged(),
                         kMaxFrameBytes)
                  .ok());
  uint32_t magic = 0;
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrameAny(*fd, {kResponseMagicV2}, kMaxFrameBytes, &magic);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> response = Response::ParseChunk(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kOk) << response->message;
  EXPECT_NE(response->body.find("classminerd health"), std::string::npos);
  EXPECT_NE(response->body.find("status: serving"), std::string::npos);
  EXPECT_NE(response->body.find("scrub: disabled"), std::string::npos);
  CloseFd(*fd);

  // And through an authenticated clearance-0 session, for completeness.
  util::StatusOr<Client> probe_client = Connect(MakeHello("probe", 0));
  ASSERT_TRUE(probe_client.ok());
  util::StatusOr<std::string> body =
      probe_client->CallForReport(RequestKind::kHealth, {});
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body->find("status: serving"), std::string::npos);
}

TEST_F(ServerTest, ResilientClientRunsRepairAtMostOnceAcrossTornSend) {
  // A degraded database entry with its pristine container next to it.
  const std::string dir = ::testing::TempDir() + "/torn_repair_media";
  (void)::mkdir(dir.c_str(), 0755);
  const std::string name = "torn_repair";
  synth::VideoScript script = synth::QuickScript(41);
  script.name = name;
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  const codec::CmvFile container = core::PackGeneratedVideo(g);
  ASSERT_TRUE(container.SaveToFile(dir + "/" + name + ".cmv").ok());
  const std::string db_path = dir + "/library.cmdb";
  {
    util::StatusOr<core::MiningResult> mined =
        core::MineCmvFileFast(container, core::MiningOptions());
    ASSERT_TRUE(mined.ok());
    index::VideoDatabase db;
    db.AddVideo(name, std::move(mined->structure), std::move(mined->events),
                /*degraded=*/true);
    ASSERT_TRUE(index::SaveDatabase(db, db_path).ok());
  }
  ASSERT_FALSE(index::VerifyDatabaseFile(db_path).clean());

  std::atomic<int> repairs_started{0};
  ServerOptions options;
  options.media_dir = dir;
  options.request_started_hook = [&](RequestKind kind) {
    if (kind == RequestKind::kRepair) ++repairs_started;
  };
  StartServer(std::move(options));

  ResilientClient::Options ropts;
  ropts.port = server_->port();
  ropts.hello = MakeHello("fixer", 3);
  ropts.retry.max_attempts = 6;
  ropts.retry.initial_backoff_ms = 5.0;
  ropts.retry.max_backoff_ms = 50.0;
  ropts.session_nonce = 77;
  ResilientClient client(std::move(ropts));

  // Establish the session first so the torn send hits the repair response,
  // not the hello.
  util::StatusOr<Response> health = client.Call([] {
    Request r;
    r.kind = RequestKind::kHealth;
    return r;
  }());
  ASSERT_TRUE(health.ok()) << health.status().ToString();

  util::FailPoint::Scoped torn("server.wire.send.torn",
                               util::FailPoint::Spec::Once());
  Request repair;
  repair.kind = RequestKind::kRepair;
  repair.args = {db_path};
  util::StatusOr<Response> response = client.Call(repair);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk) << response->message;
  EXPECT_NE(response->body.find(db_path), std::string::npos);

  // The side effects ran exactly once: the resumed call replayed the
  // recorded outcome instead of repairing a second time.
  EXPECT_EQ(repairs_started.load(), 1);
  EXPECT_EQ(util::FailPoint::FailureCount("server.wire.send.torn"), 1);
  EXPECT_TRUE(index::VerifyDatabaseFile(db_path).clean());
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_GE(stats.idempotent_hits + stats.idempotent_joined, 1u);
  const ResilientClient::Stats cstats = client.StatsSnapshot();
  EXPECT_EQ(cstats.dials, 2u);          // original session + the redial
  EXPECT_GE(cstats.resumed_calls, 1u);  // the repair was re-offered
}

TEST_F(ServerTest, ResilientClientSurvivesAcceptTimeConnectionReset) {
  StartServer();

  util::FailPoint::Scoped reset("server.accept.reset",
                                util::FailPoint::Spec::Once());
  ResilientClient::Options ropts;
  ropts.port = server_->port();
  ropts.hello = MakeHello("reconnector", 3);
  ropts.retry.max_attempts = 6;
  ropts.retry.initial_backoff_ms = 5.0;
  ropts.retry.max_backoff_ms = 50.0;
  ResilientClient client(std::move(ropts));

  // First dial is reset the moment it is accepted; the retry redials.
  Request probe;
  probe.kind = RequestKind::kHealth;
  util::StatusOr<Response> response = client.Call(probe);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk);
  EXPECT_EQ(util::FailPoint::FailureCount("server.accept.reset"), 1);
  EXPECT_EQ(client.StatsSnapshot().dials, 1u);  // one successful handshake
  EXPECT_GE(client.StatsSnapshot().resumed_calls, 1u);
}

TEST(ScrubberTest, RunOnceHealsADegradedDatabase) {
  const std::string dir = ::testing::TempDir() + "/scrub_media";
  (void)::mkdir(dir.c_str(), 0755);
  const std::string name = "scrubbable";
  synth::VideoScript script = synth::QuickScript(43);
  script.name = name;
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  const codec::CmvFile container = core::PackGeneratedVideo(g);
  ASSERT_TRUE(container.SaveToFile(dir + "/" + name + ".cmv").ok());
  const std::string db_path = dir + "/scrub.cmdb";
  {
    util::StatusOr<core::MiningResult> mined =
        core::MineCmvFileFast(container, core::MiningOptions());
    ASSERT_TRUE(mined.ok());
    index::VideoDatabase db;
    db.AddVideo(name, std::move(mined->structure), std::move(mined->events),
                /*degraded=*/true);
    ASSERT_TRUE(index::SaveDatabase(db, db_path).ok());
  }
  ASSERT_FALSE(index::VerifyDatabaseFile(db_path).clean());

  ScrubberOptions options;
  options.db_path = db_path;
  options.env.media_dir = dir;
  IntegrityScrubber scrubber(std::move(options));
  scrubber.RunOnce();

  ScrubberStats stats = scrubber.StatsSnapshot();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.dirty_found, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.repair_failures, 0u);
  EXPECT_TRUE(stats.last_clean);
  EXPECT_TRUE(stats.ever_ran);
  EXPECT_TRUE(index::VerifyDatabaseFile(db_path).clean());

  // A second pass finds a clean library and repairs nothing.
  scrubber.RunOnce();
  stats = scrubber.StatsSnapshot();
  EXPECT_EQ(stats.passes, 2u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_TRUE(stats.last_clean);
}

TEST_F(ServerTest, BackgroundScrubberHealsWhileServingAndReportsInHealth) {
  const std::string dir = ::testing::TempDir() + "/bg_scrub_media";
  (void)::mkdir(dir.c_str(), 0755);
  const std::string name = "bg_scrub";
  synth::VideoScript script = synth::QuickScript(47);
  script.name = name;
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  const codec::CmvFile container = core::PackGeneratedVideo(g);
  ASSERT_TRUE(container.SaveToFile(dir + "/" + name + ".cmv").ok());
  const std::string db_path = dir + "/bg.cmdb";
  {
    util::StatusOr<core::MiningResult> mined =
        core::MineCmvFileFast(container, core::MiningOptions());
    ASSERT_TRUE(mined.ok());
    index::VideoDatabase db;
    db.AddVideo(name, std::move(mined->structure), std::move(mined->events),
                /*degraded=*/true);
    ASSERT_TRUE(index::SaveDatabase(db, db_path).ok());
  }

  ServerOptions options;
  options.media_dir = dir;
  options.scrub_db_path = db_path;
  options.scrub_interval_ms = 25;
  options.scrub_max_yield_ms = 100;
  StartServer(std::move(options));

  // Client traffic in parallel with the scrub: the daemon keeps serving.
  util::StatusOr<Client> client = Connect(MakeHello("reader", 3));
  ASSERT_TRUE(client.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server_->StatsSnapshot().scrub_repairs < 1) {
    util::StatusOr<Response> poke = client->Call([] {
      Request r;
      r.kind = RequestKind::kHealth;
      return r;
    }());
    ASSERT_TRUE(poke.ok());
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "scrubber never repaired the database";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(index::VerifyDatabaseFile(db_path).clean());

  // Wait for the confirming pass to publish, then health reflects it.
  while (!server_->StatsSnapshot().scrub_repairs ||
         server_->StatsSnapshot().scrub_passes < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  util::StatusOr<std::string> body =
      client->CallForReport(RequestKind::kHealth, {});
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("scrub: enabled"), std::string::npos);
  EXPECT_NE(body->find("last scrub: clean"), std::string::npos);
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_GE(stats.scrub_passes, 1u);
  EXPECT_EQ(stats.scrub_dirty, 1u);
  EXPECT_EQ(stats.scrub_repairs, 1u);
  EXPECT_EQ(stats.scrub_repair_failures, 0u);
}

}  // namespace
}  // namespace classminer::server

// classminerd end-to-end: wire framing, the session handshake, the
// per-session permission matrix, admission control, deadlines, graceful
// drain, and byte-identity between server responses and the shared
// operation layer the CLI prints from.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cmv_pipeline.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/ops.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/wire.h"
#include "synth/corpus.h"
#include "util/crc32.h"
#include "util/retry.h"

namespace classminer::server {
namespace {

using util::Status;
using util::StatusCode;

std::string TestContainer(const std::string& name, uint64_t seed) {
  const std::string path = ::testing::TempDir() + "/" + name;
  const synth::GeneratedVideo g = synth::GenerateVideo(synth::QuickScript(seed));
  const codec::CmvFile file = core::PackGeneratedVideo(g);
  EXPECT_TRUE(file.SaveToFile(path).ok());
  return path;
}

SessionHello MakeHello(const std::string& user, int clearance) {
  SessionHello hello;
  hello.user = user;
  hello.clearance = clearance;
  return hello;
}

// ---------------------------------------------------------------------------
// Protocol serialization

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.kind = RequestKind::kMine;
  request.deadline_ms = 1500;
  request.args = {"clip.cmv", "--fast"};
  util::StatusOr<std::vector<uint8_t>> bytes = request.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<Request> parsed = Request::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, RequestKind::kMine);
  EXPECT_EQ(parsed->deadline_ms, 1500u);
  EXPECT_EQ(parsed->args, request.args);
}

TEST(ProtocolTest, ResponseRoundTripIncludingNewCode) {
  Response response;
  response.code = StatusCode::kDeadlineExceeded;
  response.message = "too slow";
  response.body = "partial report\n";
  util::StatusOr<std::vector<uint8_t>> bytes = response.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<Response> parsed = Response::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(parsed->message, "too slow");
  EXPECT_EQ(parsed->body, "partial report\n");
}

TEST(ProtocolTest, HelloRoundTripCarriesCredential) {
  SessionHello hello = MakeHello("dr_lee", 2);
  hello.denied_nodes = {4, 9};
  util::StatusOr<std::string> bytes = hello.Serialize();
  ASSERT_TRUE(bytes.ok());
  util::StatusOr<SessionHello> parsed = SessionHello::Parse(*bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->user, "dr_lee");
  EXPECT_EQ(parsed->clearance, 2);
  const index::UserCredential credential = parsed->ToCredential();
  EXPECT_EQ(credential.name, "dr_lee");
  EXPECT_EQ(credential.clearance, 2);
  EXPECT_EQ(credential.denied_nodes.count(4), 1u);
  EXPECT_EQ(credential.denied_nodes.count(9), 1u);
}

TEST(ProtocolTest, ParseRejectsDamage) {
  Request request;
  request.kind = RequestKind::kSkim;
  request.args = {"a.cmv"};
  std::vector<uint8_t> bytes = *request.Serialize();
  // Unknown kind byte.
  std::vector<uint8_t> bad_kind = bytes;
  bad_kind[0] = 0x7f;
  EXPECT_FALSE(Request::Parse(bad_kind).ok());
  // Truncation inside the argument list.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 2);
  EXPECT_FALSE(Request::Parse(truncated).ok());
  // Trailing junk after a well-formed request.
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(Request::Parse(trailing).ok());
  // An arg count claiming more entries than the frame could hold.
  std::vector<uint8_t> lying = bytes;
  lying[5] = 0xff;  // arg count low byte (offset: kind 1 + deadline 4)
  EXPECT_FALSE(Request::Parse(lying).ok());

  std::vector<uint8_t> resp_bytes = *MakeResponse(Status::Ok()).Serialize();
  resp_bytes[0] = 0xee;  // out-of-range status code
  EXPECT_FALSE(Response::Parse(resp_bytes).ok());
}

TEST(ProtocolTest, RequestKindNamesRoundTrip) {
  for (int k = 0; k < kRequestKindCount; ++k) {
    const RequestKind kind = static_cast<RequestKind>(k);
    util::StatusOr<RequestKind> parsed =
        ParseRequestKind(RequestKindName(kind));
    ASSERT_TRUE(parsed.ok()) << RequestKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseRequestKind("reboot").ok());
}

// ---------------------------------------------------------------------------
// Wire framing over a socketpair: short reads/writes must resume.

TEST(WireTest, FrameSurvivesDribbledDelivery) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  Request request;
  request.kind = RequestKind::kBrowse;
  request.args = {std::string(10000, 'x'), "--strict"};
  std::vector<uint8_t> body = *request.Serialize();

  // Frame bytes trickled a few at a time across many send() calls: the
  // reader's RecvAll must resume across every short read.
  std::thread writer([&] {
    uint8_t header[12];
    const uint32_t size = static_cast<uint32_t>(body.size());
    const uint32_t crc = util::Crc32(body);
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>((kRequestMagic >> (8 * i)) & 0xff);
      header[4 + i] = static_cast<uint8_t>((size >> (8 * i)) & 0xff);
      header[8 + i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
    }
    std::vector<uint8_t> frame(header, header + 12);
    frame.insert(frame.end(), body.begin(), body.end());
    for (size_t off = 0; off < frame.size(); off += 7) {
      const size_t n = std::min<size_t>(7, frame.size() - off);
      ASSERT_TRUE(SendAll(fds[1], frame.data() + off, n).ok());
    }
    close(fds[1]);
  });

  util::StatusOr<std::vector<uint8_t>> got =
      ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, body);
  close(fds[0]);
}

TEST(WireTest, CorruptFrameIsDataLossAndHangupIsUnavailable) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> body = {1, 2, 3, 4};
  ASSERT_TRUE(WriteFrame(fds[1], kRequestMagic, body, kMaxFrameBytes).ok());
  // Wrong expected magic -> kDataLoss.
  util::StatusOr<std::vector<uint8_t>> got =
      ReadFrame(fds[0], kResponseMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  close(fds[0]);
  close(fds[1]);

  // Peer hangup before any byte -> kUnavailable (normal close); hangup
  // mid-frame -> kDataLoss (a torn frame is damage, not a clean goodbye).
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[1]);
  got = ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  close(fds[0]);

  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const uint8_t partial[3] = {0x43, 0x4d, 0x52};  // first bytes of "CMRQ"
  ASSERT_TRUE(SendAll(fds[1], partial, sizeof(partial)).ok());
  close(fds[1]);
  got = ReadFrame(fds[0], kRequestMagic, kMaxFrameBytes);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  close(fds[0]);
}

TEST(WireTest, OversizedFrameRefusedBothSides) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> big(1024);
  EXPECT_EQ(WriteFrame(fds[1], kRequestMagic, big, 512).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(WriteFrame(fds[1], kRequestMagic, big, 4096).ok());
  EXPECT_EQ(ReadFrame(fds[0], kRequestMagic, 512).status().code(),
            StatusCode::kDataLoss);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Server end-to-end

class ServerTest : public ::testing::Test {
 protected:
  // Starts a server with `options` (host/port forced to loopback/ephemeral).
  void StartServer(ServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<ClassMinerServer>(std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  util::StatusOr<Client> Connect(const SessionHello& hello) {
    return Client::Connect("127.0.0.1", server_->port(), hello);
  }

  std::unique_ptr<ClassMinerServer> server_;
};

TEST_F(ServerTest, HelloRequiredBeforeAnyRequest) {
  StartServer();
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  Request request;
  request.kind = RequestKind::kVerify;
  request.args = {"whatever.cmdb"};
  ASSERT_TRUE(
      WriteFrame(*fd, kRequestMagic, *request.Serialize(), kMaxFrameBytes)
          .ok());
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> response = Response::Parse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kFailedPrecondition);
  CloseFd(*fd);
}

TEST_F(ServerTest, PermissionMatrixOverAllRequestKinds) {
  const std::string cmv = TestContainer("perm.cmv", 3);
  StartServer();
  // Default clearance floor per kind: mine 1, browse 0, skim 0,
  // verify 2, repair 3.
  const struct {
    RequestKind kind;
    int required;
    std::vector<std::string> args;
  } kCases[] = {
      {RequestKind::kMine, 1, {cmv}},
      {RequestKind::kBrowse, 0, {cmv}},
      {RequestKind::kSkim, 0, {cmv}},
      {RequestKind::kVerify, 2, {"absent.cmdb"}},
      {RequestKind::kRepair, 3, {"absent.cmdb"}},
  };
  for (int clearance = 0; clearance <= 3; ++clearance) {
    util::StatusOr<Client> client =
        Connect(MakeHello("matrix", clearance));
    ASSERT_TRUE(client.ok());
    for (const auto& c : kCases) {
      Request request;
      request.kind = c.kind;
      request.args = c.args;
      util::StatusOr<Response> response = client->Call(request);
      ASSERT_TRUE(response.ok()) << RequestKindName(c.kind);
      if (clearance < c.required) {
        EXPECT_EQ(response->code, StatusCode::kPermissionDenied)
            << RequestKindName(c.kind) << " at clearance " << clearance;
      } else {
        EXPECT_NE(response->code, StatusCode::kPermissionDenied)
            << RequestKindName(c.kind) << " at clearance " << clearance;
      }
    }
  }
  const ServerStats stats = server_->StatsSnapshot();
  // clearance 0 denies mine+verify+repair, 1 denies verify+repair,
  // 2 denies repair, 3 denies nothing.
  EXPECT_EQ(stats.permission_denied, 6u);
}

TEST_F(ServerTest, RootDenialDisablesTheAccount) {
  const std::string cmv = TestContainer("denied.cmv", 4);
  StartServer();
  SessionHello hello = MakeHello("blocked", 3);
  hello.denied_nodes = {0};  // denied the concept root
  util::StatusOr<Client> client = Connect(hello);
  ASSERT_TRUE(client.ok());
  util::StatusOr<std::string> report =
      client->CallForReport(RequestKind::kBrowse, {cmv});
  EXPECT_EQ(report.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ServerTest, ResponsesByteIdenticalToOpsLayerAcross8Clients) {
  const std::string cmv = TestContainer("identity.cmv", 7);
  StartServer();

  // The expected bytes are what the CLI prints: the shared ops layer.
  const OpEnv env;
  const OpResult mine = MineOp(cmv, /*fast=*/false, /*strict=*/false, env,
                               nullptr);
  ASSERT_TRUE(mine.ok());
  const OpResult skim = SkimOp(cmv, 3, env, nullptr);
  ASSERT_TRUE(skim.ok());
  index::UserCredential user;
  user.name = "reader";
  user.clearance = 3;
  const OpResult browse = BrowseOp({cmv}, /*strict=*/false, user, env,
                                   nullptr);
  ASSERT_TRUE(browse.ok());

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      util::StatusOr<Client> client = Connect(MakeHello("reader", 3));
      if (!client.ok()) {
        ++mismatches;
        return;
      }
      const struct {
        RequestKind kind;
        std::vector<std::string> args;
        const std::string* want;
      } kCalls[] = {
          {RequestKind::kMine, {cmv}, &mine.report},
          {RequestKind::kSkim, {cmv, "3"}, &skim.report},
          {RequestKind::kBrowse, {cmv}, &browse.report},
      };
      // Stagger which call each client starts with, so all five kinds are
      // in flight together.
      for (int j = 0; j < 3; ++j) {
        const auto& call = kCalls[(i + j) % 3];
        util::StatusOr<std::string> got =
            client->CallForReport(call.kind, call.args);
        if (!got.ok() || *got != *call.want) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server_->StatsSnapshot();
  // Hellos are answered before dispatch; the 3 ops per client all succeed.
  EXPECT_EQ(stats.requests_ok, static_cast<uint64_t>(kClients * 3));
}

TEST_F(ServerTest, AdmissionControlRejectsPastTheQueueBound) {
  const std::string cmv = TestContainer("admission.cmv", 9);

  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 1;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();  // holds the only worker busy
    }
  };
  StartServer(std::move(options));

  // Request A occupies the worker.
  util::StatusOr<Client> a = Connect(MakeHello("a", 3));
  ASSERT_TRUE(a.ok());
  std::thread blocked([&] {
    (void)a->CallForReport(RequestKind::kSkim, {cmv});
  });
  first_started.get_future().wait();

  // Request B fills the queue slot of 1.
  util::StatusOr<Client> b = Connect(MakeHello("b", 3));
  ASSERT_TRUE(b.ok());
  std::thread queued([&] {
    (void)b->CallForReport(RequestKind::kSkim, {cmv});
  });
  // B must be admitted (queued) before C can be rejected deterministically.
  while (server_->StatsSnapshot().requests_admitted < 2) {  // A + B
    std::this_thread::yield();
  }

  // Request C finds the queue full -> kUnavailable, immediately.
  util::StatusOr<Client> c = Connect(MakeHello("c", 3));
  ASSERT_TRUE(c.ok());
  util::StatusOr<std::string> rejected =
      c->CallForReport(RequestKind::kSkim, {cmv});
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // kUnavailable is exactly what util::Retry retries: once the worker is
  // released, the same request goes through.
  release_first.set_value();
  util::RetryOptions retry;
  retry.max_attempts = 50;
  retry.initial_backoff_ms = 5.0;
  retry.max_backoff_ms = 50.0;
  util::StatusOr<std::string> report = util::RetryOr<std::string>(
      retry, [&]() -> util::StatusOr<std::string> {
        return c->CallForReport(RequestKind::kSkim, {cmv});
      });
  EXPECT_TRUE(report.ok()) << report.status().ToString();

  blocked.join();
  queued.join();
  EXPECT_GE(server_->StatsSnapshot().rejected_admission, 1u);
}

TEST_F(ServerTest, DeadlineExpiredInQueueNeverExecutes) {
  const std::string cmv = TestContainer("deadline.cmv", 11);

  std::promise<void> first_started;
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 4;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      first_started.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<Client> a = Connect(MakeHello("a", 3));
  ASSERT_TRUE(a.ok());
  std::thread blocked([&] {
    (void)a->CallForReport(RequestKind::kSkim, {cmv});
  });
  first_started.get_future().wait();

  // Queued behind the blocked worker with a 1 ms deadline: by the time the
  // worker frees, the deadline has long passed.
  util::StatusOr<Client> b = Connect(MakeHello("b", 3));
  ASSERT_TRUE(b.ok());
  std::thread waiter([&] {
    util::StatusOr<std::string> report =
        b->CallForReport(RequestKind::kSkim, {cmv}, /*deadline_ms=*/1);
    EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (server_->StatsSnapshot().requests_admitted < 2) {  // A + B
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_first.set_value();
  blocked.join();
  waiter.join();
  EXPECT_GE(server_->StatsSnapshot().deadline_exceeded, 1u);
}

TEST_F(ServerTest, GracefulStopDrainsInFlightRequests) {
  const std::string cmv = TestContainer("drain.cmv", 13);

  std::promise<void> started_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<int> started{0};

  ServerOptions options;
  options.worker_threads = 2;
  options.request_started_hook = [&](RequestKind) {
    if (started.fetch_add(1) == 0) {
      started_promise.set_value();
      release.wait();
    }
  };
  StartServer(std::move(options));

  util::StatusOr<Client> client = Connect(MakeHello("drain", 3));
  ASSERT_TRUE(client.ok());
  util::StatusOr<std::string> report = Status::Internal("never ran");
  std::thread in_flight([&] {
    report = client->CallForReport(RequestKind::kSkim, {cmv});
  });
  started_promise.get_future().wait();

  // Stop while the request is mid-flight: it must still complete and flush
  // its response before Stop returns.
  std::thread stopper([&] { server_->Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_promise.set_value();
  stopper.join();
  in_flight.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ServerStats stats = server_->StatsSnapshot();
  EXPECT_EQ(stats.connections_active, 0u);  // no leaked connections
  EXPECT_GE(stats.requests_ok, 1u);
}

TEST_F(ServerTest, ConnectionCapacityRefusesTheExtraSession) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(std::move(options));

  util::StatusOr<Client> first = Connect(MakeHello("one", 1));
  ASSERT_TRUE(first.ok());
  util::StatusOr<Client> second = Connect(MakeHello("two", 1));
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server_->StatsSnapshot().connections_rejected, 1u);
}

TEST_F(ServerTest, VerifyCarriesItsReportEvenWhenDirty) {
  StartServer();
  util::StatusOr<Client> client = Connect(MakeHello("admin", 3));
  ASSERT_TRUE(client.ok());
  Request request;
  request.kind = RequestKind::kVerify;
  request.args = {::testing::TempDir() + "/no_such.cmdb"};
  util::StatusOr<Response> response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kDataLoss);
  // The body is the same report the CLI prints before exiting non-zero.
  const OpResult expected = VerifyOp(request.args[0]);
  EXPECT_EQ(response->body, expected.report);
  EXPECT_FALSE(response->body.empty());
}

TEST_F(ServerTest, MalformedRequestFrameGetsAnErrorResponse) {
  StartServer();
  util::StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // A CRC-valid frame whose body is not a parseable request.
  std::vector<uint8_t> junk = {0x7f, 0x00};
  ASSERT_TRUE(WriteFrame(*fd, kRequestMagic, junk, kMaxFrameBytes).ok());
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(*fd, kResponseMagic, kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  util::StatusOr<Response> response = Response::Parse(*frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  CloseFd(*fd);
}

}  // namespace
}  // namespace classminer::server

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "codec/dct.h"

namespace classminer::util {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  struct Span {
    uint8_t* p;
    size_t n;
  };
  std::vector<Span> spans;
  for (size_t align : {size_t{1}, size_t{2}, size_t{8}, size_t{16},
                       size_t{32}, size_t{64}, size_t{128}}) {
    for (size_t bytes : {size_t{1}, size_t{3}, size_t{8}, size_t{100},
                         size_t{4096}}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      // Absolute-address alignment, not offset-within-chunk alignment.
      EXPECT_TRUE(IsAligned(p, align)) << "align " << align;
      spans.push_back({static_cast<uint8_t*>(p), bytes});
    }
  }
  // Writing each span in full must not disturb any other span.
  for (size_t i = 0; i < spans.size(); ++i) {
    std::memset(spans[i].p, static_cast<int>(i + 1), spans[i].n);
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = 0; j < spans[i].n; ++j) {
      ASSERT_EQ(spans[i].p[j], static_cast<uint8_t>(i + 1))
          << "span " << i << " byte " << j;
    }
  }
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena arena(/*initial_chunk_bytes=*/256);
  // Far more than one 256-byte chunk's worth.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, 100);
  }
  EXPECT_GE(arena.bytes_allocated(), size_t{100} * 100);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
  EXPECT_EQ(arena.allocation_count(), 100u);
}

TEST(ArenaTest, OversizedRequestStillSucceeds) {
  Arena arena(/*initial_chunk_bytes=*/64);
  const size_t big = Arena::kDefaultChunkBytes * 3;
  void* p = arena.Allocate(big, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(IsAligned(p, 64));
  std::memset(p, 0xCD, big);
}

TEST(ArenaTest, ZeroByteAllocationsReturnUniquePointers) {
  Arena arena;
  std::set<void*> seen;
  for (int i = 0; i < 16; ++i) {
    void* p = arena.Allocate(0);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate zero-byte pointer";
  }
}

TEST(ArenaTest, ResetRecyclesCapacity) {
  Arena arena;
  for (int i = 0; i < 32; ++i) arena.Allocate(1000);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
  // Chunks are kept, not returned to the OS.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // The next run reuses the same capacity without growing.
  for (int i = 0; i < 32; ++i) {
    void* p = arena.Allocate(1000);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5A, 1000);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(/*initial_chunk_bytes=*/512);
  void* p = a.Allocate(64);
  std::memset(p, 0x77, 64);
  const size_t allocated = a.bytes_allocated();

  Arena b(std::move(a));
  EXPECT_EQ(b.bytes_allocated(), allocated);
  // The old allocation is still readable through the new owner.
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(static_cast<uint8_t*>(p)[i], 0x77);
  }
  void* q = b.Allocate(64);
  ASSERT_NE(q, nullptr);

  Arena c;
  c = std::move(b);
  EXPECT_EQ(c.bytes_allocated(), allocated + 64);
  ASSERT_NE(c.Allocate(64), nullptr);
}

TEST(ArenaTest, ConcurrentAllocationsDoNotOverlap) {
  Arena arena(/*initial_chunk_bytes=*/1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<uint8_t*>> ptrs(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&arena, &ptrs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto* p = static_cast<uint8_t*>(arena.Allocate(16, 16));
        std::memset(p, t + 1, 16);
        ptrs[static_cast<size_t>(t)].push_back(p);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(arena.allocation_count(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (uint8_t* p : ptrs[static_cast<size_t>(t)]) {
      for (size_t j = 0; j < 16; ++j) {
        ASSERT_EQ(p[j], static_cast<uint8_t>(t + 1));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// pmr integration: the semantics Plane / the decoder rely on.

TEST(ArenaPmrTest, VectorDrawsFromArena) {
  Arena arena;
  const size_t before = arena.bytes_allocated();
  std::pmr::vector<int16_t> v(10'000, int16_t{7}, &arena);
  EXPECT_GT(arena.bytes_allocated(), before);
  EXPECT_GE(arena.bytes_allocated() - before, 10'000 * sizeof(int16_t));
  EXPECT_TRUE(v.get_allocator().resource()->is_equal(arena));
}

TEST(ArenaPmrTest, MoveConstructionKeepsTheArenaResource) {
  Arena arena;
  std::pmr::vector<int16_t> v(1000, int16_t{3}, &arena);
  const int16_t* data = v.data();
  std::pmr::vector<int16_t> moved(std::move(v));
  // Move-construction adopts the source allocator: same storage, no copy.
  EXPECT_EQ(moved.data(), data);
  EXPECT_TRUE(moved.get_allocator().resource()->is_equal(arena));
}

TEST(ArenaPmrTest, CopyEscapesToTheDefaultResource) {
  Arena arena;
  std::pmr::vector<int16_t> v(1000, int16_t{3}, &arena);
  // Plain copy-construction uses select_on_container_copy_construction,
  // which for pmr is the *default* resource — this is what makes copying a
  // value out of a run safe after the arena resets.
  std::pmr::vector<int16_t> copy(v);
  EXPECT_FALSE(copy.get_allocator().resource()->is_equal(arena));
  EXPECT_TRUE(copy.get_allocator().resource()->is_equal(
      *std::pmr::get_default_resource()));
  arena.Reset();
  for (int16_t x : copy) ASSERT_EQ(x, 3);
}

TEST(ArenaPmrTest, IsEqualIsPointerIdentity) {
  Arena a;
  Arena b;
  EXPECT_TRUE(a.is_equal(a));
  EXPECT_FALSE(a.is_equal(b));
}

TEST(ArenaPmrTest, PlaneMakeUsesTheSuppliedResource) {
  Arena arena;
  const size_t before = arena.bytes_allocated();
  codec::Plane p = codec::Plane::Make(64, 48, 5, &arena);
  EXPECT_GE(arena.bytes_allocated() - before,
            size_t{64} * 48 * sizeof(int16_t));
  EXPECT_EQ(p.samples.size(), size_t{64} * 48);
  for (int16_t s : p.samples) ASSERT_EQ(s, 5);
  // Moving the plane keeps arena storage (the decoder's recon handoff).
  codec::Plane q = std::move(p);
  EXPECT_TRUE(q.samples.get_allocator().resource()->is_equal(arena));
  // Default Make stays on the heap.
  codec::Plane heap = codec::Plane::Make(8, 8);
  EXPECT_TRUE(heap.samples.get_allocator().resource()->is_equal(
      *std::pmr::get_default_resource()));
}

}  // namespace
}  // namespace classminer::util

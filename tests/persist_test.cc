#include <gtest/gtest.h>

#include "index/classifier.h"
#include "index/persist.h"
#include "media/color.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::index {
namespace {

shot::Shot MakeShot(int index, double hue, uint64_t seed) {
  util::Rng rng(seed + static_cast<uint64_t>(index));
  media::Image img(48, 36, media::HsvToRgb({hue, 0.7, 0.8}));
  media::AddNoise(&img, 4, &rng);
  shot::Shot s;
  s.index = index;
  s.start_frame = index * 30;
  s.end_frame = index * 30 + 29;
  s.rep_frame = s.start_frame + 9;
  s.features = features::ExtractShotFeatures(img);
  return s;
}

VideoDatabase MakeDatabase() {
  VideoDatabase db;
  structure::ContentStructure cs;
  for (int i = 0; i < 6; ++i) {
    cs.shots.push_back(MakeShot(i, i < 3 ? 20.0 : 150.0, 400));
  }
  for (int g = 0; g < 2; ++g) {
    structure::Group group;
    group.index = g;
    group.start_shot = g * 3;
    group.end_shot = g * 3 + 2;
    group.temporally_related = g == 0;
    structure::ShotCluster cluster;
    cluster.shot_indices = {g * 3, g * 3 + 1, g * 3 + 2};
    cluster.rep_shot = g * 3 + 1;
    group.clusters.push_back(cluster);
    group.rep_shots = {g * 3 + 1};
    cs.groups.push_back(group);
    structure::Scene scene;
    scene.index = g;
    scene.start_group = g;
    scene.end_group = g;
    scene.rep_group = g;
    scene.eliminated = false;
    cs.scenes.push_back(scene);
  }
  structure::SceneCluster sc;
  sc.scene_indices = {0, 1};
  sc.rep_group = 0;
  cs.clustered_scenes.push_back(sc);

  events::EventRecord e0;
  e0.scene_index = 0;
  e0.type = events::EventType::kPresentation;
  e0.has_slide = true;
  e0.shot_count = 3;
  events::EventRecord e1;
  e1.scene_index = 1;
  e1.type = events::EventType::kClinicalOperation;
  e1.has_blood = true;
  e1.skin_shot_count = 2;
  e1.shot_count = 3;
  db.AddVideo("persist_me", std::move(cs), {e0, e1});
  return db;
}

TEST(PersistTest, RoundTripPreservesEverything) {
  const VideoDatabase db = MakeDatabase();
  const std::vector<uint8_t> bytes = SerializeDatabase(db);
  util::StatusOr<VideoDatabase> back = ParseDatabase(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  ASSERT_EQ(back->video_count(), 1);
  const VideoEntry& orig = db.video(0);
  const VideoEntry& copy = back->video(0);
  EXPECT_EQ(copy.name, orig.name);
  ASSERT_EQ(copy.structure.shots.size(), orig.structure.shots.size());
  for (size_t i = 0; i < orig.structure.shots.size(); ++i) {
    EXPECT_EQ(copy.structure.shots[i].start_frame,
              orig.structure.shots[i].start_frame);
    EXPECT_EQ(copy.structure.shots[i].features.histogram,
              orig.structure.shots[i].features.histogram);
    EXPECT_EQ(copy.structure.shots[i].features.tamura,
              orig.structure.shots[i].features.tamura);
  }
  ASSERT_EQ(copy.structure.groups.size(), 2u);
  EXPECT_TRUE(copy.structure.groups[0].temporally_related);
  EXPECT_EQ(copy.structure.groups[0].clusters[0].shot_indices,
            orig.structure.groups[0].clusters[0].shot_indices);
  ASSERT_EQ(copy.structure.clustered_scenes.size(), 1u);
  EXPECT_EQ(copy.structure.clustered_scenes[0].scene_indices,
            orig.structure.clustered_scenes[0].scene_indices);
  ASSERT_EQ(copy.events.size(), 2u);
  EXPECT_EQ(copy.events[1].type, events::EventType::kClinicalOperation);
  EXPECT_TRUE(copy.events[1].has_blood);
  EXPECT_EQ(copy.events[1].skin_shot_count, 2);
}

TEST(PersistTest, FileRoundTrip) {
  const VideoDatabase db = MakeDatabase();
  const std::string path = ::testing::TempDir() + "/db_test.cmdb";
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  util::StatusOr<VideoDatabase> back = LoadDatabase(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->TotalShotCount(), db.TotalShotCount());
}

TEST(PersistTest, BadMagicRejected) {
  std::vector<uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_FALSE(ParseDatabase(bytes).ok());
}

TEST(PersistTest, TruncationRejected) {
  const VideoDatabase db = MakeDatabase();
  std::vector<uint8_t> bytes = SerializeDatabase(db);
  bytes.resize(bytes.size() / 3);
  util::StatusOr<VideoDatabase> back = ParseDatabase(bytes);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kDataLoss);
}

TEST(PersistTest, EmptyDatabase) {
  VideoDatabase db;
  util::StatusOr<VideoDatabase> back = ParseDatabase(SerializeDatabase(db));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->video_count(), 0);
}

TEST(ClassifierTest, ClinicalDominatedVideo) {
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  const SemanticClassifier classifier(&concepts);
  const VideoDatabase db = MakeDatabase();  // 1 presentation + 1 clinical
  const VideoAssignment a = classifier.ClassifyVideo(db.video(0));
  EXPECT_EQ(a.video_id, 0);
  EXPECT_EQ(a.presentation_scenes, 1);
  EXPECT_EQ(a.clinical_scenes, 1);
  // Tie resolves toward the clinical (health_care) branch.
  EXPECT_EQ(concepts.node(a.cluster_node).name, "health_care");
  ASSERT_EQ(a.scenes.size(), 2u);
  EXPECT_EQ(concepts.node(a.scenes[0].concept_node).name, "presentation");
  EXPECT_EQ(concepts.node(a.scenes[1].concept_node).name,
            "clinical_operation");
}

TEST(ClassifierTest, PresentationDominatedVideo) {
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  const SemanticClassifier classifier(&concepts);
  VideoDatabase db;
  structure::ContentStructure cs;
  cs.shots.push_back(MakeShot(0, 10, 500));
  events::EventRecord e0;
  e0.scene_index = 0;
  e0.type = events::EventType::kPresentation;
  events::EventRecord e1;
  e1.scene_index = 1;
  e1.type = events::EventType::kPresentation;
  events::EventRecord e2;
  e2.scene_index = 2;
  e2.type = events::EventType::kDialog;
  db.AddVideo("lecture", std::move(cs), {e0, e1, e2});
  const VideoAssignment a = classifier.ClassifyVideo(db.video(0));
  EXPECT_EQ(concepts.node(a.cluster_node).name, "medical_education");
}

TEST(ClassifierTest, AllUndeterminedStaysAtRoot) {
  const ConceptHierarchy concepts = ConceptHierarchy::MedicalDefault();
  const SemanticClassifier classifier(&concepts);
  VideoDatabase db;
  structure::ContentStructure cs;
  events::EventRecord e;
  e.scene_index = 0;
  e.type = events::EventType::kUndetermined;
  db.AddVideo("mystery", std::move(cs), {e});
  const VideoAssignment a = classifier.ClassifyVideo(db.video(0));
  EXPECT_EQ(a.cluster_node, concepts.root());
}

}  // namespace
}  // namespace classminer::index

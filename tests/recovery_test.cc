// Crash-consistent persistence and self-healing recovery: a crash injected
// at any step of the atomic save sequence must leave a loadable database
// generation (old or new, never a torn mixture); OpenDatabaseAnyGeneration
// must find it; and the repair pass must re-mine degraded entries back to
// pristine so a subsequent verify reports zero integrity failures.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "codec/container.h"
#include "core/cmv_pipeline.h"
#include "core/repair.h"
#include "index/database.h"
#include "index/persist.h"
#include "index/repair.h"
#include "shot/detector.h"
#include "structure/content_structure.h"
#include "synth/video_generator.h"
#include "util/failpoint.h"
#include "util/salvage.h"
#include "util/serial.h"
#include "util/status.h"

namespace classminer {
namespace {

using util::FailPoint;
using util::StatusCode;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::DisarmAll();
    dir_ = ::testing::TempDir();
  }
  void TearDown() override { FailPoint::DisarmAll(); }

  // A unique database path per test; stale generations from earlier runs
  // are cleared so fallback assertions see only this test's files.
  std::string FreshDbPath(const std::string& stem) {
    const std::string path = dir_ + "/" + stem + ".cmdb";
    std::remove(path.c_str());
    std::remove(index::DatabaseBackupPath(path).c_str());
    std::remove(index::DatabaseManifestPath(path).c_str());
    return path;
  }

  std::string dir_;
};

// A database with `videos` single-shot entries named video0..videoN.
index::VideoDatabase MakeDatabase(int videos, bool degrade_first = false) {
  index::VideoDatabase db;
  for (int v = 0; v < videos; ++v) {
    structure::ContentStructure cs;
    shot::Shot s;
    s.index = 0;
    s.end_frame = 29;
    s.rep_frame = 9;
    cs.shots.push_back(s);
    db.AddVideo("video" + std::to_string(v), std::move(cs), {},
                degrade_first && v == 0);
  }
  return db;
}

const char* const kAtomicSites[] = {"serial.atomic_write.tmp_write",
                                    "serial.atomic_write.fsync",
                                    "serial.atomic_write.rename"};

// ---------------------------------------------------------------------------
// Crash matrix: every atomic-write site x {prior generation, fresh path}.

TEST_F(RecoveryTest, CrashAtEverySiteWithPriorGenerationKeepsADatabase) {
  for (const char* site : kAtomicSites) {
    const std::string path = FreshDbPath(std::string("crash_prior_") + site);
    ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok()) << site;

    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    const util::Status crashed = index::SaveDatabase(MakeDatabase(2), path);
    FailPoint::DisarmAll();
    EXPECT_FALSE(crashed.ok()) << site;

    // Whatever the crash point, a complete generation is reopenable: the
    // one-video database survives (the two-video save never became
    // current before the injected crash).
    util::SalvageReport report;
    const util::StatusOr<index::OpenResult> opened =
        index::OpenDatabaseAnyGeneration(path, &report);
    ASSERT_TRUE(opened.ok()) << site;
    EXPECT_FALSE(opened->salvaged) << site;
    EXPECT_EQ(opened->db.video_count(), 1) << site;
    EXPECT_EQ(opened->db.video(0).name, "video0") << site;
  }
}

TEST_F(RecoveryTest, CrashAtEverySiteOnFreshPathLeavesNoTornFile) {
  for (const char* site : kAtomicSites) {
    const std::string path = FreshDbPath(std::string("crash_fresh_") + site);
    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    EXPECT_FALSE(index::SaveDatabase(MakeDatabase(2), path).ok()) << site;
    FailPoint::DisarmAll();
    // No torn bytes appear at the destination; the open fails cleanly
    // instead of loading garbage.
    EXPECT_EQ(util::ReadFile(path).status().code(), StatusCode::kNotFound)
        << site;
    EXPECT_FALSE(index::OpenDatabaseAnyGeneration(path, nullptr).ok()) << site;
  }
}

TEST_F(RecoveryTest, CompletedSaveAfterCrashesWinsCleanly) {
  const std::string path = FreshDbPath("crash_then_win");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  for (const char* site : kAtomicSites) {
    FailPoint::Arm(site, FailPoint::Spec::Once(StatusCode::kDataLoss));
    EXPECT_FALSE(index::SaveDatabase(MakeDatabase(2), path).ok());
    FailPoint::DisarmAll();
  }
  // After the outage clears, a full save lands and verifies pristine.
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(3), path).ok());
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.videos, 3);
}

// ---------------------------------------------------------------------------
// Generations and the manifest.

TEST_F(RecoveryTest, SecondSaveRotatesThePreviousGeneration) {
  const std::string path = FreshDbPath("rotate");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(2), path).ok());

  const util::StatusOr<index::VideoDatabase> current =
      index::LoadDatabase(path);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->video_count(), 2);
  const util::StatusOr<index::VideoDatabase> previous =
      index::LoadDatabase(index::DatabaseBackupPath(path));
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(previous->video_count(), 1);

  const util::StatusOr<index::DatabaseManifest> manifest =
      index::LoadManifest(index::DatabaseManifestPath(path));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->generation, 2u);
  EXPECT_TRUE(index::VerifyDatabaseFile(path).clean());
}

TEST_F(RecoveryTest, ManifestRoundTripsAndRejectsBadMagic) {
  index::DatabaseManifest m;
  m.generation = 41;
  m.size = 1234;
  m.crc = 0xDEADBEEF;
  std::vector<uint8_t> bytes = index::SerializeManifest(m);
  const util::StatusOr<index::DatabaseManifest> parsed =
      index::ParseManifest(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->generation, 41u);
  EXPECT_EQ(parsed->size, 1234u);
  EXPECT_EQ(parsed->crc, 0xDEADBEEFu);
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(index::ParseManifest(bytes).ok());
}

TEST_F(RecoveryTest, InterruptedManifestWriteIsAdvisoryNotFatal) {
  const std::string path = FreshDbPath("stale_manifest");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  // The data file and the manifest are written by consecutive atomic
  // writes; firing the tmp_write site on the second one models a crash
  // between them: new data, stale manifest.
  FailPoint::Arm("serial.atomic_write.tmp_write",
                 FailPoint::Spec::EveryN(2, StatusCode::kDataLoss));
  EXPECT_FALSE(index::SaveDatabase(MakeDatabase(2), path).ok());
  FailPoint::DisarmAll();

  // The new generation is fully readable; only the manifest lags behind.
  const util::StatusOr<index::VideoDatabase> loaded =
      index::LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video_count(), 2);
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(verify.loadable);
  EXPECT_TRUE(verify.manifest_present);
  EXPECT_FALSE(verify.manifest_matches);
  EXPECT_FALSE(verify.clean());
  // Any-generation open treats the stale manifest as advisory.
  const util::StatusOr<index::OpenResult> opened =
      index::OpenDatabaseAnyGeneration(path, nullptr);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->db.video_count(), 2);
}

TEST_F(RecoveryTest, StaleManifestDiagnosticsNameTheRecordedGeneration) {
  const std::string path = FreshDbPath("stale_manifest_detail");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  FailPoint::Arm("serial.atomic_write.tmp_write",
                 FailPoint::Spec::EveryN(2, StatusCode::kDataLoss));
  EXPECT_FALSE(index::SaveDatabase(MakeDatabase(2), path).ok());
  FailPoint::DisarmAll();

  // The report says more than "stale": it names the generation the manifest
  // still describes and the size/CRC actually on disk, so an operator can
  // tell a harmless lagging manifest from a truncated data file.
  const index::VerifyReport verify = index::VerifyDatabaseFile(path);
  EXPECT_FALSE(verify.manifest_matches);
  ASSERT_FALSE(verify.stale_detail.empty());
  EXPECT_NE(verify.stale_detail.find("manifest generation"),
            std::string::npos)
      << verify.stale_detail;
  EXPECT_NE(verify.stale_detail.find("file has"), std::string::npos)
      << verify.stale_detail;
  EXPECT_NE(verify.ToString().find("manifest=stale(" + verify.stale_detail),
            std::string::npos)
      << verify.ToString();

  // A clean save clears the diagnostic entirely.
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(2), path).ok());
  const index::VerifyReport healed = index::VerifyDatabaseFile(path);
  EXPECT_TRUE(healed.clean()) << healed.ToString();
  EXPECT_TRUE(healed.stale_detail.empty());
}

// ---------------------------------------------------------------------------
// Fallback chain of OpenDatabaseAnyGeneration.

TEST_F(RecoveryTest, UnsalvageableCurrentFallsBackToPreviousGeneration) {
  const std::string path = FreshDbPath("fallback_prev");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(2), path).ok());
  // Destroy the current generation's header: strict and salvage parses
  // both refuse it, so the previous generation answers.
  std::vector<uint8_t> bytes = *util::ReadFile(path);
  bytes[0] ^= 0xFF;
  ASSERT_TRUE(util::WriteFile(path, bytes).ok());

  util::SalvageReport report;
  const util::StatusOr<index::OpenResult> opened =
      index::OpenDatabaseAnyGeneration(path, &report);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->used_backup);
  EXPECT_FALSE(opened->salvaged);
  EXPECT_EQ(opened->db.video_count(), 1);
  EXPECT_FALSE(report.notes.empty());
}

TEST_F(RecoveryTest, BitFlippedCurrentIsSalvagedWithResync) {
  const std::string path = FreshDbPath("fallback_salvage");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(3), path).ok());
  // Flip one byte mid-file (inside the second entry's body): strict load
  // fails on its checksum, salvage resynchronises onto the third entry.
  std::vector<uint8_t> bytes = *util::ReadFile(path);
  bytes[bytes.size() * 2 / 5] ^= 0xFF;
  ASSERT_TRUE(util::WriteFile(path, bytes).ok());

  util::SalvageReport report;
  const util::StatusOr<index::OpenResult> opened =
      index::OpenDatabaseAnyGeneration(path, &report);
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(opened->used_backup);  // no .prev generation exists here
  EXPECT_TRUE(opened->salvaged);
  EXPECT_EQ(opened->db.video_count(), 2);
  EXPECT_EQ(report.resync_points, 1);
}

TEST_F(RecoveryTest, LoadSiteInjectsAndOpenReportsTheOutage) {
  const std::string path = FreshDbPath("load_site");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(1), path).ok());
  FailPoint::Arm("index.persist.load",
                 FailPoint::Spec::Always(StatusCode::kDataLoss));
  EXPECT_EQ(index::LoadDatabase(path).status().code(), StatusCode::kDataLoss);
  // Every rung of the fallback chain goes through the same site, so the
  // open fails cleanly instead of crashing or spinning.
  EXPECT_FALSE(index::OpenDatabaseAnyGeneration(path, nullptr).ok());
  FailPoint::DisarmAll();
  EXPECT_TRUE(index::OpenDatabaseAnyGeneration(path, nullptr).ok());
}

// ---------------------------------------------------------------------------
// Repair pass: re-mine degraded entries from pristine containers, then
// verify reports zero integrity failures.

synth::GeneratedVideo SmallGenerated(const std::string& name) {
  synth::VideoScript script;
  script.name = name;
  script.seed = 33;
  script.width = 64;
  script.height = 48;
  script.scenes.push_back({synth::SceneKind::kPresentation, 3, 0, 0, -1, 1.0});
  script.scenes.push_back({synth::SceneKind::kDialog, 3, 1, 0, 1, 1.0});
  return synth::GenerateVideo(script);
}

TEST_F(RecoveryTest, RepairReminesDegradedEntryAndVerifyComesBackClean) {
  const std::string name = "repairable";
  const std::string db_path = FreshDbPath("repair_e2e");
  const synth::GeneratedVideo generated = SmallGenerated(name);
  const codec::CmvFile container = core::PackGeneratedVideo(generated);
  ASSERT_TRUE(container.SaveToFile(dir_ + "/" + name + ".cmv").ok());

  // Ingest the entry flagged degraded (as a salvage-path ingest would).
  util::StatusOr<core::MiningResult> mined =
      core::MineCmvFileFast(container, core::MiningOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  index::VideoDatabase db;
  db.AddVideo(name, std::move(mined->structure), std::move(mined->events),
              /*degraded=*/true);
  ASSERT_TRUE(index::SaveDatabase(db, db_path).ok());
  EXPECT_FALSE(index::VerifyDatabaseFile(db_path).clean());

  util::SalvageReport salvage;
  const util::StatusOr<index::RepairReport> report = index::RepairDatabaseFile(
      db_path, core::MakeCmvRemineFn(dir_), &salvage);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->examined, 1);
  EXPECT_EQ(report->degraded, 1);
  EXPECT_EQ(report->repaired, 1);
  EXPECT_EQ(report->failed, 0);
  EXPECT_TRUE(report->rewritten);

  const index::VerifyReport verify = index::VerifyDatabaseFile(db_path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.degraded_videos, 0);
  // The repaired entry carries real mined structure, not a husk.
  const util::StatusOr<index::VideoDatabase> loaded =
      index::LoadDatabase(db_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->video(0).degraded);
  EXPECT_GT(loaded->TotalShotCount(), 0u);

  // A second pass finds nothing to do and does not rewrite.
  const util::StatusOr<index::RepairReport> again = index::RepairDatabaseFile(
      db_path, core::MakeCmvRemineFn(dir_), nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->degraded, 0);
  EXPECT_FALSE(again->rewritten);
}

TEST_F(RecoveryTest, RepairLeavesEntryDegradedWhenSourceIsMissing) {
  const std::string db_path = FreshDbPath("repair_missing");
  index::VideoDatabase db = MakeDatabase(2, /*degrade_first=*/true);
  ASSERT_TRUE(index::SaveDatabase(db, db_path).ok());

  const util::StatusOr<index::RepairReport> report = index::RepairDatabaseFile(
      db_path, core::MakeCmvRemineFn(dir_ + "/no_such_dir"), nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->degraded, 1);
  EXPECT_EQ(report->repaired, 0);
  EXPECT_EQ(report->failed, 1);
  EXPECT_FALSE(report->rewritten);
  // The entry stays flagged rather than being dropped or blanked.
  const util::StatusOr<index::VideoDatabase> loaded =
      index::LoadDatabase(db_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video_count(), 2);
  EXPECT_TRUE(loaded->video(0).degraded);
}

TEST_F(RecoveryTest, RepairPromotesASalvagedOpenToAPristineGeneration) {
  const std::string db_path = FreshDbPath("repair_promote");
  ASSERT_TRUE(index::SaveDatabase(MakeDatabase(3), db_path).ok());
  std::vector<uint8_t> bytes = *util::ReadFile(db_path);
  bytes[bytes.size() * 2 / 5] ^= 0xFF;  // tear the middle entry
  ASSERT_TRUE(util::WriteFile(db_path, bytes).ok());

  // No entry is flagged degraded, but the open itself needed salvage, so
  // repair rewrites a pristine current generation from what survived.
  const util::StatusOr<index::RepairReport> report =
      index::RepairDatabaseFile(db_path, index::RemineFn(), nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->repaired, 0);
  EXPECT_TRUE(report->rewritten);
  const index::VerifyReport verify = index::VerifyDatabaseFile(db_path);
  EXPECT_TRUE(verify.clean()) << verify.ToString();
  EXPECT_EQ(verify.videos, 2);
}

}  // namespace
}  // namespace classminer

// End-to-end integration tests: synthetic video -> full ClassMiner pipeline
// -> structure/events checked against scripted ground truth.

#include <gtest/gtest.h>

#include "core/classminer.h"
#include "core/metrics.h"
#include "synth/corpus.h"

namespace classminer {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generated_ = new synth::GeneratedVideo(
        synth::GenerateVideo(synth::QuickScript(11)));
    util::StatusOr<core::MiningResult> mined =
        core::MineVideo(generated_->video, generated_->audio);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    result_ = new core::MiningResult(std::move(*mined));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete generated_;
    result_ = nullptr;
    generated_ = nullptr;
  }

  static synth::GeneratedVideo* generated_;
  static core::MiningResult* result_;
};

synth::GeneratedVideo* PipelineTest::generated_ = nullptr;
core::MiningResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ShotDetectionMatchesScriptClosely) {
  const core::CutScore score = core::ScoreCuts(
      result_->shot_trace.cuts, generated_->truth.CutPositions());
  EXPECT_GE(score.recall, 0.9) << "missed cuts";
  EXPECT_GE(score.precision, 0.9) << "spurious cuts";
}

TEST_F(PipelineTest, StructureLevelsAreConsistent) {
  const structure::ContentStructure& cs = result_->structure;
  ASSERT_FALSE(cs.shots.empty());
  ASSERT_FALSE(cs.groups.empty());
  ASSERT_FALSE(cs.scenes.empty());

  // Groups tile the shot axis.
  int next = 0;
  for (const structure::Group& g : cs.groups) {
    EXPECT_EQ(g.start_shot, next);
    EXPECT_GE(g.end_shot, g.start_shot);
    next = g.end_shot + 1;
  }
  EXPECT_EQ(next, static_cast<int>(cs.shots.size()));

  // Scenes tile the group axis.
  next = 0;
  for (const structure::Scene& s : cs.scenes) {
    EXPECT_EQ(s.start_group, next);
    EXPECT_GE(s.end_group, s.start_group);
    next = s.end_group + 1;
  }
  EXPECT_EQ(next, static_cast<int>(cs.groups.size()));
}

TEST_F(PipelineTest, SceneDetectionPrecisionIsReasonable) {
  const core::SceneDetectionScore score = core::ScoreSceneDetection(
      result_->structure.shots, core::ScenesAsShotSets(result_->structure),
      generated_->truth);
  EXPECT_GT(score.detected_scenes, 0);
  EXPECT_GE(score.precision, 0.5);
}

TEST_F(PipelineTest, EventsIncludeAllThreeCategories) {
  core::EventScoreTable table;
  core::AccumulateEventScores(result_->structure, result_->events,
                              generated_->truth, &table);
  core::FinalizeEventScores(&table);
  // The quick script has exactly one scene of each category; the miner
  // should recover most of them.
  const core::EventScore avg = table.Average();
  EXPECT_GT(avg.detected, 0);
  EXPECT_GE(avg.precision, 0.5);
  EXPECT_GE(avg.recall, 0.5);
}

}  // namespace
}  // namespace classminer

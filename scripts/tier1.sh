#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the concurrency-sensitive suites and an ASan+UBSan pass over the
# corruption/fault-injection suites (hostile bytes are where memory bugs
# hide).
#
#   scripts/tier1.sh            # build dirs ./build, ./build-tsan, ./build-asan
#   SKIP_TSAN=1 scripts/tier1.sh
#   SKIP_ASAN=1 scripts/tier1.sh
#   SKIP_SCALAR=1 scripts/tier1.sh   # skip the forced-scalar kernel leg
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_SCALAR:-0}" != "1" ]]; then
  echo "== tier-1: forced-scalar kernels (CLASSMINER_DISABLE_SIMD=1) =="
  # The kernel, codec and mining suites re-run with every SIMD path pinned
  # off, proving the scalar fallbacks carry the pipeline by themselves and
  # that outputs don't depend on the dispatch level. Benches must also
  # compile at both levels (same binaries; dispatch is runtime).
  CLASSMINER_DISABLE_SIMD=1 ./build/tests/kernels_test
  CLASSMINER_DISABLE_SIMD=1 ./build/tests/codec_test
  CLASSMINER_DISABLE_SIMD=1 ./build/tests/features_test
  CLASSMINER_DISABLE_SIMD=1 ./build/tests/cmv_pipeline_test
  cmake --build build -j --target micro_kernels >/dev/null
  CLASSMINER_DISABLE_SIMD=1 ./build/bench/micro_kernels \
    --benchmark_min_time=0.01 >/dev/null
fi

echo "== tier-1: server smoke (daemon + concurrent clients, plain) =="
scripts/server_smoke.sh build

echo "== tier-1: server chaos (fault injection + reconnecting clients) =="
scripts/server_chaos.sh build

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier-1: ThreadSanitizer (concurrency + parallel pipeline) =="
  cmake -B build-tsan -S . -DCLASSMINER_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target concurrency_test parallel_pipeline_test pipeline_dag_test frame_source_test failpoint_test >/dev/null
  ./build-tsan/tests/concurrency_test
  ./build-tsan/tests/parallel_pipeline_test
  ./build-tsan/tests/pipeline_dag_test
  ./build-tsan/tests/frame_source_test
  ./build-tsan/tests/failpoint_test

  echo "== tier-1: server smoke (TSAN) =="
  # The daemon's accept/worker/deadline threads and the client fan-out all
  # run under ThreadSanitizer; the smoke fails on any reported race.
  cmake --build build-tsan -j --target classminerd classminer_client classminer_cli >/dev/null
  scripts/server_smoke.sh build-tsan

  echo "== tier-1: server chaos (TSAN) =="
  # Fault injection under ThreadSanitizer: torn sends, accept resets and
  # the background scrubber all racing live traffic.
  scripts/server_chaos.sh build-tsan
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== tier-1: ASan+UBSan (corruption corpus + fault injection) =="
  cmake -B build-asan -S . -DCLASSMINER_ASAN=ON >/dev/null
  cmake --build build-asan -j --target robustness_test failpoint_test codec_test persist_test >/dev/null
  ./build-asan/tests/robustness_test
  ./build-asan/tests/failpoint_test
  ./build-asan/tests/codec_test
  ./build-asan/tests/persist_test

  echo "== tier-1: arena + kernels (ASan, poisoned-on-reset chunks) =="
  # The arena poisons recycled chunks on Reset, so any use-after-reset in
  # the decoder's double-buffered planes or the kernel scratch shows up as
  # a use-after-poison here rather than silent cross-run reads.
  cmake --build build-asan -j --target arena_test kernels_test >/dev/null
  ./build-asan/tests/arena_test
  ./build-asan/tests/kernels_test

  echo "== tier-1: crash-recovery matrix (ASan) =="
  # Crashes injected at every serial.atomic_write.* site, with and without
  # a prior generation, must leave a reopenable database; torn CMV/CMDB
  # files must resynchronise; repair must bring verify back to clean. The
  # sharded tier's matrix adds the index.shard.append.* / index.shard.
  # compact.* / index.shard.open sites: any injected crash must reopen to a
  # consistent pre- or post-operation library, never a torn one.
  cmake --build build-asan -j --target recovery_test shard_test >/dev/null
  ./build-asan/tests/recovery_test
  ./build-asan/tests/shard_test
fi

echo "tier-1 OK"

#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the concurrency-sensitive suites.
#
#   scripts/tier1.sh            # standard build dir ./build, TSAN dir ./build-tsan
#   SKIP_TSAN=1 scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier-1: ThreadSanitizer (concurrency + parallel pipeline) =="
  cmake -B build-tsan -S . -DCLASSMINER_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target concurrency_test parallel_pipeline_test pipeline_dag_test frame_source_test >/dev/null
  ./build-tsan/tests/concurrency_test
  ./build-tsan/tests/parallel_pipeline_test
  ./build-tsan/tests/pipeline_dag_test
  ./build-tsan/tests/frame_source_test
fi

echo "tier-1 OK"

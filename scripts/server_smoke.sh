#!/usr/bin/env bash
# Server smoke: start classminerd, drive it from concurrent serial (v1)
# clients, verify the responses are byte-identical to the CLI, then park 64
# idle connections on the reactor while 8 pipelined (v2) clients stream
# repeated requests — asserting the daemon's thread count never moves
# (readiness-driven, zero reader threads) — and finally stop the daemon
# with SIGTERM and assert a graceful drain (exit 0, zero leaked
# connections). tier1.sh runs this against both the plain and TSAN builds.
#
#   scripts/server_smoke.sh [BUILD_DIR]   # default ./build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="./$BUILD_DIR/examples/classminer"
DAEMON="./$BUILD_DIR/examples/classminerd"
CLIENT="./$BUILD_DIR/examples/classminer-client"
CLIENTS="${CLIENTS:-8}"

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== server smoke ($BUILD_DIR): corpus =="
"$CLI" generate "$WORK/ward_rounds.cmv" --title laparoscopy --seed 11 \
  >/dev/null

echo "== server smoke: start daemon =="
"$DAEMON" --port 0 --threads 4 --queue 8 \
  >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
DAEMON_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' \
    "$WORK/daemon.out" 2>/dev/null || true)"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "daemon died during startup" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "daemon never reported its port" >&2
  exit 1
fi
echo "daemon pid $DAEMON_PID on port $PORT"

echo "== server smoke: $CLIENTS concurrent clients, byte-identity vs CLI =="
"$CLI" mine "$WORK/ward_rounds.cmv" --fast >"$WORK/expected.txt" \
  2>/dev/null
PIDS=()
for i in $(seq 1 "$CLIENTS"); do
  "$CLIENT" --port "$PORT" --user "smoke$i" --clearance 3 --retries 8 \
    mine "$WORK/ward_rounds.cmv" --fast \
    >"$WORK/client$i.txt" 2>"$WORK/client$i.err" &
  PIDS+=("$!")
done
FAILED=0
for pid in "${PIDS[@]}"; do
  wait "$pid" || FAILED=1
done
if [[ "$FAILED" != 0 ]]; then
  echo "a client exited non-zero" >&2
  cat "$WORK"/client*.err >&2
  exit 1
fi
for i in $(seq 1 "$CLIENTS"); do
  if ! cmp -s "$WORK/expected.txt" "$WORK/client$i.txt"; then
    echo "client $i response differs from CLI output" >&2
    diff "$WORK/expected.txt" "$WORK/client$i.txt" >&2 || true
    exit 1
  fi
done
echo "all $CLIENTS responses byte-identical to the CLI"

echo "== server smoke: pipelined v2 leg (64 idle + 8 active sessions) =="
# Park 64 connections that never speak: the reactor just watches their
# fds. A thread-per-connection server would spawn 64 readers; the epoll
# reactor must not change its thread count at all.
THREADS_BEFORE="$(ls /proc/$DAEMON_PID/task | wc -l)"
IDLE_FDS=()
for _ in $(seq 1 64); do
  exec {idle_fd}<>"/dev/tcp/127.0.0.1/$PORT"
  IDLE_FDS+=("$idle_fd")
done
THREADS_AFTER="$(ls /proc/$DAEMON_PID/task | wc -l)"
if [[ "$THREADS_BEFORE" != "$THREADS_AFTER" ]]; then
  echo "daemon thread count moved with idle connections:" \
    "$THREADS_BEFORE -> $THREADS_AFTER (expected readiness, not threads)" >&2
  exit 1
fi
echo "64 idle connections parked; daemon still $THREADS_AFTER thread(s)"

# 8 active pipelined sessions, each with 4 requests in flight, repeated 4
# times — every reassembled streamed response must equal 4 copies of the
# CLI's output (cache hits included: hits are byte-identical to fresh runs).
cat "$WORK/expected.txt" "$WORK/expected.txt" "$WORK/expected.txt" \
  "$WORK/expected.txt" >"$WORK/expected4.txt"
PIDS=()
for i in $(seq 1 8); do
  "$CLIENT" --port "$PORT" --user "pipe$i" --clearance 3 --retries 8 \
    --pipeline 4 --repeat 4 mine "$WORK/ward_rounds.cmv" --fast \
    >"$WORK/pipe$i.txt" 2>"$WORK/pipe$i.err" &
  PIDS+=("$!")
done
FAILED=0
for pid in "${PIDS[@]}"; do
  wait "$pid" || FAILED=1
done
if [[ "$FAILED" != 0 ]]; then
  echo "a pipelined client exited non-zero" >&2
  cat "$WORK"/pipe*.err >&2
  exit 1
fi
for i in $(seq 1 8); do
  if ! cmp -s "$WORK/expected4.txt" "$WORK/pipe$i.txt"; then
    echo "pipelined client $i response differs from 4x CLI output" >&2
    diff "$WORK/expected4.txt" "$WORK/pipe$i.txt" >&2 || true
    exit 1
  fi
done
for idle_fd in "${IDLE_FDS[@]}"; do
  exec {idle_fd}>&-
done
echo "8 pipelined sessions byte-identical to 4x CLI output"

echo "== server smoke: permission denial over the wire =="
if "$CLIENT" --port "$PORT" --user intern --clearance 0 \
  mine "$WORK/ward_rounds.cmv" --fast >/dev/null 2>"$WORK/denied.err"; then
  echo "clearance-0 mine should have been denied" >&2
  exit 1
fi
grep -q "PERMISSION_DENIED" "$WORK/denied.err" || {
  echo "expected PERMISSION_DENIED, got:" >&2
  cat "$WORK/denied.err" >&2
  exit 1
}

echo "== server smoke: SIGTERM graceful drain =="
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [[ "$STATUS" != 0 ]]; then
  echo "daemon exited $STATUS (expected graceful 0)" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi
grep -q "0 connection(s) still active" "$WORK/daemon.err" || {
  echo "daemon leaked connections:" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
}
grep -q "0 reader thread(s)" "$WORK/daemon.err" || {
  echo "daemon reported per-connection reader threads:" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
}
sed -n 's/^classminerd: /daemon stats: /p' "$WORK/daemon.err"

echo "server smoke OK"

#!/usr/bin/env bash
# Server chaos smoke: classminerd with fault-injection sites armed on live
# traffic — probabilistic torn/short/delayed/duplicated response frames plus
# a deterministic accept-time connection reset every 7th session — driven by
# 8 concurrent reconnecting clients. The clients' final reports must be
# byte-identical to a fault-free CLI run: every torn send forces a redial
# and an idempotent resume, and the replayed outcome must carry the same
# bytes. Then a second daemon runs the background integrity scrubber under
# client load: a library indexed from a truncated container (degraded
# entry) must come back clean without anyone asking for a repair.
# tier1.sh runs this against both the plain and TSAN builds.
#
#   scripts/server_chaos.sh [BUILD_DIR]   # default ./build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="./$BUILD_DIR/examples/classminer"
DAEMON="./$BUILD_DIR/examples/classminerd"
CLIENT="./$BUILD_DIR/examples/classminer-client"
CLIENTS="${CLIENTS:-8}"

WORK="$(mktemp -d)"
DAEMON_PID=""
LOAD_PIDS=()
cleanup() {
  for pid in "${LOAD_PIDS[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {  # start_daemon <args...>; sets DAEMON_PID and PORT
  "$DAEMON" "$@" >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' \
      "$WORK/daemon.out" 2>/dev/null || true)"
    [[ -n "$PORT" ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "daemon died during startup" >&2
      cat "$WORK/daemon.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "$PORT" ]]; then
    echo "daemon never reported its port" >&2
    exit 1
  fi
  echo "daemon pid $DAEMON_PID on port $PORT"
}

stop_daemon() {  # SIGTERM + graceful-drain asserts
  kill -TERM "$DAEMON_PID"
  local status=0
  wait "$DAEMON_PID" || status=$?
  DAEMON_PID=""
  if [[ "$status" != 0 ]]; then
    echo "daemon exited $status (expected graceful 0)" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  fi
  grep -q "0 connection(s) still active" "$WORK/daemon.err" || {
    echo "daemon leaked (hung) connections under chaos:" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  }
  sed -n 's/^classminerd: /daemon stats: /p' "$WORK/daemon.err"
}

echo "== server chaos ($BUILD_DIR): corpus =="
"$CLI" generate "$WORK/ward_rounds.cmv" --title laparoscopy --seed 11 \
  >/dev/null
"$CLI" mine "$WORK/ward_rounds.cmv" --fast >"$WORK/expected.txt" 2>/dev/null
cat "$WORK/expected.txt" "$WORK/expected.txt" "$WORK/expected.txt" \
  "$WORK/expected.txt" >"$WORK/expected4.txt"

echo "== server chaos: daemon with fault injection armed =="
# Every 10th response-path send tears the frame and hangs up; sends can
# also shorten, stall, or duplicate probabilistically, and every 7th
# accepted connection is reset before the hello. The torn/reset faults
# kill real sessions mid-call, so the clients below must redial and resume
# through their idempotency keys — the deterministic every:N specs
# guarantee the faults actually fire.
start_daemon --port 0 --threads 4 --queue 16 \
  --idle-timeout 5000 --max-errors 8 \
  --chaos "server.wire.send.torn=every:10,server.wire.send.short=p:0.05:11,server.wire.send.delay=p:0.05:13,server.wire.frame.dup=p:0.08:5,server.accept.reset=every:7"

echo "== server chaos: $CLIENTS reconnecting clients, byte-identity =="
PIDS=()
for i in $(seq 1 "$CLIENTS"); do
  "$CLIENT" --port "$PORT" --user "chaos$i" --clearance 3 --retries 16 \
    --pipeline 4 --repeat 4 mine "$WORK/ward_rounds.cmv" --fast \
    >"$WORK/chaos$i.txt" 2>"$WORK/chaos$i.err" &
  PIDS+=("$!")
done
FAILED=0
for pid in "${PIDS[@]}"; do
  wait "$pid" || FAILED=1
done
if [[ "$FAILED" != 0 ]]; then
  echo "a client exited non-zero under chaos" >&2
  cat "$WORK"/chaos*.err >&2
  exit 1
fi
for i in $(seq 1 "$CLIENTS"); do
  if ! cmp -s "$WORK/expected4.txt" "$WORK/chaos$i.txt"; then
    echo "client $i report differs from the fault-free run" >&2
    diff "$WORK/expected4.txt" "$WORK/chaos$i.txt" >&2 || true
    exit 1
  fi
done
echo "all $CLIENTS chaos clients byte-identical to the fault-free run"

echo "== server chaos: graceful drain with faults still armed =="
stop_daemon
# The byte-identity above is only meaningful if the faults really hit live
# calls: at least one retry must have been answered from the idempotency
# record (hit) or joined to its still-running original.
if grep -q "idempotent 0 hit / 0 joined" "$WORK/daemon.err"; then
  echo "chaos never forced an idempotent resume — faults did not engage" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi

echo "== server chaos: scrubber heals a corrupted library under load =="
# A library indexed from a truncated container carries a degraded entry;
# the pristine source lives in the media dir under the entry's name. The
# scrubber must find the rot and re-mine it while clients keep the workers
# busy — nobody asks for the repair.
mkdir -p "$WORK/media"
"$CLI" generate "$WORK/media/laparoscopy.cmv" --title laparoscopy --seed 19 \
  >/dev/null
SIZE="$(stat -c %s "$WORK/media/laparoscopy.cmv" 2>/dev/null ||
  stat -f %z "$WORK/media/laparoscopy.cmv")"
head -c $((SIZE * 3 / 4)) "$WORK/media/laparoscopy.cmv" >"$WORK/damaged.cmv"
"$CLI" index "$WORK/library.cmdb" "$WORK/damaged.cmv" >/dev/null 2>&1
if "$CLI" verify "$WORK/library.cmdb" >/dev/null 2>&1; then
  echo "library should have started dirty" >&2
  exit 1
fi

start_daemon --port 0 --threads 4 --queue 16 --media "$WORK/media" \
  --scrub-db "$WORK/library.cmdb" --scrub-interval 200 --scrub-yield 500

# Client load in the background so the scrubber has traffic to yield to.
for i in 1 2; do
  (
    for _ in $(seq 1 30); do
      "$CLIENT" --port "$PORT" --user "load$i" --clearance 3 --retries 8 \
        mine "$WORK/ward_rounds.cmv" --fast >/dev/null 2>&1 || true
    done
  ) &
  LOAD_PIDS+=("$!")
done

HEALED=0
for _ in $(seq 1 300); do
  if "$CLIENT" --port "$PORT" --user probe --clearance 0 health \
    >"$WORK/health.txt" 2>/dev/null &&
    grep -q "last scrub: clean" "$WORK/health.txt" &&
    grep -q "degraded entries: 0" "$WORK/health.txt"; then
    HEALED=1
    break
  fi
  sleep 0.2
done
if [[ "$HEALED" != 1 ]]; then
  echo "scrubber never healed the library; last health report:" >&2
  cat "$WORK/health.txt" >&2 || true
  cat "$WORK/daemon.err" >&2
  exit 1
fi
echo "health reports a clean scrub under load"
for pid in "${LOAD_PIDS[@]}"; do
  wait "$pid" || true
done
LOAD_PIDS=()

stop_daemon
"$CLI" verify "$WORK/library.cmdb" >/dev/null || {
  echo "library still dirty after the scrubber claimed a repair" >&2
  exit 1
}
grep -q "scrub.*1 repaired" "$WORK/daemon.err" || {
  echo "daemon stats never recorded the scrub repair:" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
}
echo "library verifies clean after the background repair"

echo "== server chaos: scrubber compacts a sharded library under load =="
# A sharded append-log library accumulates dead records as entries are
# re-indexed; with --scrub-compact the daemon's scrubber folds them away
# while clients keep the workers busy. The health report must show the
# compaction happened, and the library must verify clean (and actually be
# compact: a follow-up CLI compact finds nothing to fold).
"$CLI" index "$WORK/shardlib.cmdb" --shards 4 \
  "$WORK/media/laparoscopy.cmv" >/dev/null
for _ in 1 2 3; do
  "$CLI" index "$WORK/shardlib.cmdb" --append "$WORK/ward_rounds.cmv" \
    >/dev/null
done
"$CLI" verify "$WORK/shardlib.cmdb" >/dev/null || {
  echo "sharded library should verify clean before compaction" >&2
  exit 1
}

start_daemon --port 0 --threads 4 --queue 16 --media "$WORK/media" \
  --scrub-db "$WORK/shardlib.cmdb" --scrub-interval 200 --scrub-yield 500 \
  --scrub-compact

for i in 1 2; do
  (
    for _ in $(seq 1 20); do
      "$CLIENT" --port "$PORT" --user "compactload$i" --clearance 3 \
        --retries 8 mine "$WORK/ward_rounds.cmv" --fast >/dev/null 2>&1 ||
        true
    done
  ) &
  LOAD_PIDS+=("$!")
done

COMPACTED=0
for _ in $(seq 1 300); do
  if "$CLIENT" --port "$PORT" --user probe --clearance 0 health \
    >"$WORK/health2.txt" 2>/dev/null &&
    grep -q "scrub compactions: [1-9]" "$WORK/health2.txt" &&
    grep -q "last scrub: clean" "$WORK/health2.txt"; then
    COMPACTED=1
    break
  fi
  sleep 0.2
done
if [[ "$COMPACTED" != 1 ]]; then
  echo "scrubber never compacted the sharded library; last health:" >&2
  cat "$WORK/health2.txt" >&2 || true
  cat "$WORK/daemon.err" >&2
  exit 1
fi
echo "health reports a scrub compaction under load"
for pid in "${LOAD_PIDS[@]}"; do
  wait "$pid" || true
done
LOAD_PIDS=()

stop_daemon
"$CLI" verify "$WORK/shardlib.cmdb" >/dev/null || {
  echo "sharded library dirty after scrub compaction" >&2
  exit 1
}
"$CLI" compact "$WORK/shardlib.cmdb" >"$WORK/compact.txt" || {
  echo "CLI compact failed after scrub compaction" >&2
  cat "$WORK/compact.txt" >&2
  exit 1
}
grep -q "compacted 0 shard(s), dropped 0 dead record(s)" \
  "$WORK/compact.txt" || {
  echo "scrubber left dead records behind:" >&2
  cat "$WORK/compact.txt" >&2
  exit 1
}
echo "sharded library is clean and fully folded"

echo "server chaos OK"

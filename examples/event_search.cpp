// Event search: "show me all patient-doctor dialogs within the video" —
// the query the paper motivates in Sec. 4. Mines a video, then lists the
// scenes of each requested event category with their time spans.
//
//   ./example_event_search [presentation|dialog|clinical_operation]

#include <cstdio>
#include <cstring>

#include "core/classminer.h"
#include "synth/corpus.h"

int main(int argc, char** argv) {
  using namespace classminer;

  events::EventType wanted = events::EventType::kDialog;
  if (argc > 1) {
    if (std::strcmp(argv[1], "presentation") == 0) {
      wanted = events::EventType::kPresentation;
    } else if (std::strcmp(argv[1], "clinical_operation") == 0) {
      wanted = events::EventType::kClinicalOperation;
    } else if (std::strcmp(argv[1], "dialog") != 0) {
      std::fprintf(stderr,
                   "usage: %s [presentation|dialog|clinical_operation]\n",
                   argv[0]);
      return 1;
    }
  }

  const synth::GeneratedVideo input =
      synth::GenerateVideo(synth::QuickScript(77));
  const util::StatusOr<core::MiningResult> mined =
      core::MineVideo(input.video, input.audio);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  const core::MiningResult& result = *mined;

  std::printf("query: show me all %s scenes in '%s'\n\n",
              events::EventTypeName(wanted), input.video.name().c_str());

  int hits = 0;
  const double fps = input.video.fps();
  for (const events::EventRecord& rec : result.events) {
    if (rec.type != wanted) continue;
    const structure::Scene& scene =
        result.structure.scenes[static_cast<size_t>(rec.scene_index)];
    const std::vector<int> shots =
        result.structure.ShotIndicesOfScene(scene);
    const shot::Shot& first =
        result.structure.shots[static_cast<size_t>(shots.front())];
    const shot::Shot& last =
        result.structure.shots[static_cast<size_t>(shots.back())];
    std::printf("scene %d: %.1fs - %.1fs (%zu shots)", scene.index,
                first.StartSeconds(fps), last.EndSeconds(fps), shots.size());
    if (rec.any_speaker_change) std::printf(" [speaker changes]");
    if (rec.has_slide) std::printf(" [slides]");
    if (rec.has_blood) std::printf(" [blood regions]");
    std::printf("\n");
    ++hits;
  }
  if (hits == 0) std::printf("(no %s scenes found)\n",
                             events::EventTypeName(wanted));
  return 0;
}

// Quickstart: generate a small medical-education video, run the full
// ClassMiner pipeline, and print the mined content structure and events.
//
//   ./example_quickstart

#include <cstdio>

#include "core/classminer.h"
#include "events/event_miner.h"
#include "synth/corpus.h"

int main() {
  using namespace classminer;

  // 1. A scripted stand-in for a real medical video (see synth/).
  const synth::GeneratedVideo input =
      synth::GenerateVideo(synth::QuickScript());
  std::printf("video '%s': %d frames @ %.1f fps (%.1f s), audio %.1f s\n",
              input.video.name().c_str(), input.video.frame_count(),
              input.video.fps(), input.video.DurationSeconds(),
              input.audio.DurationSeconds());

  // 2. The full pipeline: shots -> groups -> scenes -> clustered scenes,
  //    visual/audio cues, event mining.
  const util::StatusOr<core::MiningResult> mined =
      core::MineVideo(input.video, input.audio);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  const core::MiningResult& result = *mined;

  const structure::ContentStructure& cs = result.structure;
  std::printf("\nmined structure: %zu shots, %zu groups, %d scenes, "
              "%zu clustered scenes (CRF %.3f)\n",
              cs.shots.size(), cs.groups.size(), cs.ActiveSceneCount(),
              cs.clustered_scenes.size(), cs.CompressionRateFactor());

  // 3. Scenes with their mined events.
  std::printf("\n%-6s %-8s %-8s %s\n", "scene", "groups", "shots", "event");
  for (const events::EventRecord& rec : result.events) {
    const structure::Scene& scene =
        cs.scenes[static_cast<size_t>(rec.scene_index)];
    std::printf("%-6d %-8d %-8d %s\n", scene.index, scene.group_count(),
                cs.ShotCountOfScene(scene), events::EventTypeName(rec.type));
  }

  // 4. Scripted truth for comparison.
  std::printf("\nscripted scenes (ground truth):\n");
  for (const synth::SceneTruth& s : input.truth.scenes) {
    std::printf("  scene %d: %s (shots %d..%d)\n", s.index,
                synth::SceneKindName(s.kind), s.start_shot, s.end_shot);
  }
  return 0;
}

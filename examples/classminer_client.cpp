// classminer-client — remote front end over a running classminerd. Mirrors
// the local CLI commands; the response body printed to stdout is
// byte-identical to what the equivalent `classminer` invocation prints:
//
//   classminer-client [--host H] --port N [--user NAME] [--clearance N]
//                     [--deny ID ...] [--deadline MS] [--retries N]
//                     <mine|browse|skim|verify|repair> [args...]
//
// kUnavailable answers (admission control, connection capacity) are
// retried with exponential backoff through util::Retry; every other
// failure is final and printed to stderr.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/client.h"
#include "util/retry.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: classminer-client [--host H] --port N [--user NAME] "
      "[--clearance N]\n"
      "                         [--deny ID ...] [--deadline MS] "
      "[--retries N]\n"
      "                         <mine|browse|skim|verify|repair> "
      "[args...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace classminer;

  std::string host = "127.0.0.1";
  int port = -1;
  server::SessionHello hello;
  hello.user = "client";
  hello.clearance = 3;
  uint32_t deadline_ms = 0;
  int retries = 3;
  std::string command;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!command.empty()) {
      args.push_back(arg);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--user" && i + 1 < argc) {
      hello.user = argv[++i];
    } else if (arg == "--clearance" && i + 1 < argc) {
      hello.clearance = std::atoi(argv[++i]);
    } else if (arg == "--deny" && i + 1 < argc) {
      hello.denied_nodes.push_back(std::atoi(argv[++i]));
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      command = arg;
    } else {
      return Usage();
    }
  }
  if (port < 0 || command.empty()) return Usage();
  util::StatusOr<server::RequestKind> kind =
      server::ParseRequestKind(command);
  if (!kind.ok() || *kind == server::RequestKind::kHello) return Usage();

  // Admission rejections and capacity refusals are kUnavailable — exactly
  // the code util::Retry treats as transient — so a loaded daemon sheds
  // the burst and the client re-offers the request with backoff.
  util::RetryOptions retry;
  retry.max_attempts = retries < 1 ? 1 : retries;
  retry.initial_backoff_ms = 25.0;
  retry.max_backoff_ms = 1000.0;

  std::string report;
  const util::Status status = util::Retry(retry, [&]() -> util::Status {
    util::StatusOr<server::Client> client =
        server::Client::Connect(host, port, hello);
    if (!client.ok()) return client.status();
    util::StatusOr<server::Response> response = client->Call([&] {
      server::Request request;
      request.kind = *kind;
      request.deadline_ms = deadline_ms;
      request.args = args;
      return request;
    }());
    if (!response.ok()) return response.status();
    // Dirty verify/repair outcomes still carry their report; print it
    // before the failing status decides the exit code.
    report = response->body;
    return response->ToStatus();
  });

  if (!report.empty()) std::printf("%s", report.c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "classminer-client: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

// classminer-client — remote front end over a running classminerd. Mirrors
// the local CLI commands; the response body printed to stdout is
// byte-identical to what the equivalent `classminer` invocation prints:
//
//   classminer-client [--host H] --port N [--user NAME] [--clearance N]
//                     [--deny ID ...] [--deadline MS] [--retries N]
//                     [--pipeline D] [--repeat N]
//                     <mine|browse|skim|verify|repair> [args...]
//
// --repeat N issues the same request N times. With --pipeline D the
// repeats ride one protocol-v2 session with up to D requests in flight at
// once (responses reassembled from streamed chunks, printed in issue
// order); without it each repeat is a fresh serial v1 call. kUnavailable
// answers (admission control, connection capacity) are retried with
// exponential backoff through util::Retry; every other failure is final
// and printed to stderr.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/client.h"
#include "util/retry.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: classminer-client [--host H] --port N [--user NAME] "
      "[--clearance N]\n"
      "                         [--deny ID ...] [--deadline MS] "
      "[--retries N]\n"
      "                         [--pipeline D] [--repeat N]\n"
      "                         <mine|browse|skim|verify|repair> "
      "[args...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace classminer;

  std::string host = "127.0.0.1";
  int port = -1;
  server::SessionHello hello;
  hello.user = "client";
  hello.clearance = 3;
  uint32_t deadline_ms = 0;
  int retries = 3;
  int pipeline = 0;  // 0 = serial v1; >= 1 = pipelined v2 depth
  int repeat = 1;
  std::string command;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!command.empty()) {
      args.push_back(arg);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--user" && i + 1 < argc) {
      hello.user = argv[++i];
    } else if (arg == "--clearance" && i + 1 < argc) {
      hello.clearance = std::atoi(argv[++i]);
    } else if (arg == "--deny" && i + 1 < argc) {
      hello.denied_nodes.push_back(std::atoi(argv[++i]));
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      command = arg;
    } else {
      return Usage();
    }
  }
  if (port < 0 || command.empty()) return Usage();
  util::StatusOr<server::RequestKind> kind =
      server::ParseRequestKind(command);
  if (!kind.ok() || *kind == server::RequestKind::kHello) return Usage();

  // Admission rejections and capacity refusals are kUnavailable — exactly
  // the code util::Retry treats as transient — so a loaded daemon sheds
  // the burst and the client re-offers the request with backoff.
  util::RetryOptions retry;
  retry.max_attempts = retries < 1 ? 1 : retries;
  retry.initial_backoff_ms = 25.0;
  retry.max_backoff_ms = 1000.0;

  if (repeat < 1) repeat = 1;
  const auto make_request = [&] {
    server::Request request;
    request.kind = *kind;
    request.deadline_ms = deadline_ms;
    request.args = args;
    return request;
  };

  std::string report;
  util::Status status = util::Status::Ok();
  if (pipeline >= 1) {
    // One v2 session, up to `pipeline` requests on the wire at once;
    // reports print in issue order however the server finishes them.
    status = util::Retry(retry, [&]() -> util::Status {
      report.clear();
      util::StatusOr<std::unique_ptr<server::PipelinedClient>> client =
          server::PipelinedClient::Connect(host, port, hello);
      if (!client.ok()) return client.status();
      std::deque<std::future<util::StatusOr<server::Response>>> window;
      util::Status batch = util::Status::Ok();
      const auto settle = [&] {
        util::StatusOr<server::Response> response =
            std::move(window.front()).get();
        window.pop_front();
        if (!response.ok()) return response.status();
        report += response->body;
        return response->ToStatus();
      };
      for (int n = 0; n < repeat && batch.ok(); ++n) {
        if (static_cast<int>(window.size()) >= pipeline) batch = settle();
        if (batch.ok()) window.push_back((*client)->AsyncCall(make_request()));
      }
      while (!window.empty()) {
        const util::Status drained = settle();
        if (batch.ok()) batch = drained;
      }
      return batch;
    });
  } else {
    status = util::Retry(retry, [&]() -> util::Status {
      report.clear();
      util::StatusOr<server::Client> client =
          server::Client::Connect(host, port, hello);
      if (!client.ok()) return client.status();
      for (int n = 0; n < repeat; ++n) {
        util::StatusOr<server::Response> response =
            client->Call(make_request());
        if (!response.ok()) return response.status();
        // Dirty verify/repair outcomes still carry their report; print it
        // before the failing status decides the exit code.
        report += response->body;
        const util::Status op = response->ToStatus();
        if (!op.ok()) return op;
      }
      return util::Status::Ok();
    });
  }

  if (!report.empty()) std::printf("%s", report.c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "classminer-client: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

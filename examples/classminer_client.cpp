// classminer-client — remote front end over a running classminerd. Mirrors
// the local CLI commands; the response body printed to stdout is
// byte-identical to what the equivalent `classminer` invocation prints:
//
//   classminer-client [--host H] --port N [--user NAME] [--clearance N]
//                     [--deny ID ...] [--deadline MS] [--retries N]
//                     [--pipeline D] [--repeat N]
//                     <mine|browse|skim|verify|repair|health> [args...]
//
// --repeat N issues the same request N times. With --pipeline D up to D
// requests ride one protocol-v2 session at once (responses reassembled
// from streamed chunks, printed in issue order); without it the repeats go
// out one at a time over the same session.
//
// Every call runs through ResilientClient: a connection that dies mid-call
// (daemon restart, reset, torn frame) is redialed and the call re-offered
// with its original idempotency key, so the server replays or joins the
// original execution instead of running it twice — --retries therefore
// covers dropped connections, not just admission-control kUnavailable.
// Every other failure is final and printed to stderr.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/client.h"
#include "util/retry.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: classminer-client [--host H] --port N [--user NAME] "
      "[--clearance N]\n"
      "                         [--deny ID ...] [--deadline MS] "
      "[--retries N]\n"
      "                         [--pipeline D] [--repeat N]\n"
      "                         <mine|browse|skim|verify|repair|health> "
      "[args...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace classminer;

  server::ResilientClient::Options options;
  options.hello.user = "client";
  options.hello.clearance = 3;
  uint32_t deadline_ms = 0;
  int retries = 3;
  int pipeline = 0;  // 0 = one call at a time; >= 1 = pipelined depth
  int repeat = 1;
  int port = -1;
  std::string command;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!command.empty()) {
      args.push_back(arg);
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--user" && i + 1 < argc) {
      options.hello.user = argv[++i];
    } else if (arg == "--clearance" && i + 1 < argc) {
      options.hello.clearance = std::atoi(argv[++i]);
    } else if (arg == "--deny" && i + 1 < argc) {
      options.hello.denied_nodes.push_back(std::atoi(argv[++i]));
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      command = arg;
    } else {
      return Usage();
    }
  }
  if (port < 0 || command.empty()) return Usage();
  options.port = port;
  util::StatusOr<server::RequestKind> kind =
      server::ParseRequestKind(command);
  if (!kind.ok() || *kind == server::RequestKind::kHello) return Usage();

  // Admission rejections, capacity refusals, and dropped connections are
  // all kUnavailable — the transient code ResilientClient re-offers with
  // exponential backoff, reconnecting when the transport itself failed.
  options.retry.max_attempts = retries < 1 ? 1 : retries;
  options.retry.initial_backoff_ms = 25.0;
  options.retry.max_backoff_ms = 1000.0;

  if (repeat < 1) repeat = 1;
  server::ResilientClient client(std::move(options));
  const auto make_request = [&] {
    server::Request request;
    request.kind = *kind;
    request.deadline_ms = deadline_ms;
    request.args = args;
    return request;
  };
  const auto call = [&] { return client.Call(make_request()); };

  // Settle responses in issue order whatever order they finish in. Dirty
  // verify/repair outcomes still carry their report; print it before the
  // failing status decides the exit code.
  std::string report;
  util::Status status = util::Status::Ok();
  const auto settle = [&](util::StatusOr<server::Response> response) {
    if (!response.ok()) return response.status();
    report += response->body;
    return response->ToStatus();
  };

  if (pipeline >= 1) {
    // Depth-D pipelining: D concurrent calls share the one resilient
    // session; each call resumes independently if the transport drops.
    std::deque<std::future<util::StatusOr<server::Response>>> window;
    for (int n = 0; n < repeat && status.ok(); ++n) {
      if (static_cast<int>(window.size()) >= pipeline) {
        status = settle(std::move(window.front()).get());
        window.pop_front();
      }
      if (status.ok()) {
        window.push_back(std::async(std::launch::async, call));
      }
    }
    while (!window.empty()) {
      const util::Status drained = settle(std::move(window.front()).get());
      window.pop_front();
      if (status.ok()) status = drained;
    }
  } else {
    for (int n = 0; n < repeat && status.ok(); ++n) {
      status = settle(call());
    }
  }

  if (!report.empty()) std::printf("%s", report.c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "classminer-client: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Skim browser: builds the 4-level scalable skim of a mined video, prints
// the per-level tracks with their frame compression ratios, and exports a
// self-contained HTML summary (the paper's Fig. 11 tool, textually).
//
//   ./example_skim_browser [output.html]

#include <cstdio>
#include <string>

#include "core/classminer.h"
#include "skim/skimmer.h"
#include "skim/summary.h"
#include "synth/corpus.h"

int main(int argc, char** argv) {
  using namespace classminer;

  const std::string out_path =
      argc > 1 ? argv[1] : "classminer_summary.html";

  const synth::GeneratedVideo input =
      synth::GenerateVideo(synth::QuickScript(42));
  const util::StatusOr<core::MiningResult> mined =
      core::MineVideo(input.video, input.audio);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  const core::MiningResult& result = *mined;
  const skim::ScalableSkim sk(&result.structure);

  std::printf("scalable skim of '%s' (%d frames)\n\n",
              input.video.name().c_str(), input.video.frame_count());
  std::printf("%-6s %-12s %-10s %s\n", "level", "skim shots", "frames",
              "FCR");
  for (int lvl = skim::kSkimLevels; lvl >= 1; --lvl) {
    const skim::SkimTrack& t = sk.track(lvl);
    std::printf("%-6d %-12zu %-10ld %.3f\n", lvl, t.shot_indices.size(),
                t.frame_count, sk.Fcr(lvl));
  }

  // The event colour bar, as text.
  std::printf("\nevent bar: ");
  for (const skim::ColorBarSegment& seg :
       skim::BuildColorBar(result.structure, result.events)) {
    const char tag = events::EventTypeName(seg.event)[0];  // p/d/c/u
    const int cells = static_cast<int>((seg.end - seg.begin) * 40) + 1;
    for (int i = 0; i < cells; ++i) std::printf("%c", tag);
  }
  std::printf("\n  (p=presentation d=dialog c=clinical u=undetermined)\n");

  const util::Status status = skim::ExportHtmlSummary(
      result.structure, result.events, sk, input.video.name(), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "HTML export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

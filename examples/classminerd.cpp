// classminerd — the ClassMiner daemon. Serves mine/browse/skim/verify/
// repair over the CMRQ/CMRS wire protocol (see DESIGN.md) so many clients
// can share one mining service:
//
//   classminerd [--host H] [--port N] [--threads N] [--queue N]
//               [--max-conn N] [--media DIR] [--pipeline N]
//               [--chunk BYTES] [--write-queue BYTES] [--no-cache]
//               [--cache-bytes N] [--cache-entries N]
//
// The bound port is printed to stdout as "listening on H:P" (useful with
// --port 0, which picks an ephemeral port). SIGTERM/SIGINT stop the daemon
// gracefully: the listener closes, in-flight requests drain and flush
// their responses, and the final stats line goes to stderr.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: classminerd [--host H] [--port N] [--threads N] "
               "[--queue N] [--max-conn N] [--media DIR] [--pipeline N] "
               "[--chunk BYTES] [--write-queue BYTES] [--no-cache] "
               "[--cache-bytes N] [--cache-entries N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace classminer;

  server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.worker_threads = std::atoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      options.max_queue = std::atoi(argv[++i]);
    } else if (arg == "--max-conn" && i + 1 < argc) {
      options.max_connections = std::atoi(argv[++i]);
    } else if (arg == "--media" && i + 1 < argc) {
      options.media_dir = argv[++i];
    } else if (arg == "--pipeline" && i + 1 < argc) {
      options.max_pipeline = std::atoi(argv[++i]);
    } else if (arg == "--chunk" && i + 1 < argc) {
      options.stream_chunk_bytes =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--write-queue" && i + 1 < argc) {
      options.max_write_queue_bytes =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--no-cache") {
      options.enable_result_cache = false;
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      options.cache_max_bytes = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--cache-entries" && i + 1 < argc) {
      options.cache_max_entries =
          static_cast<size_t>(std::atol(argv[++i]));
    } else {
      return Usage();
    }
  }

  server::ClassMinerServer daemon(options);
  const util::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "classminerd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", options.host.c_str(), daemon.port());
  std::fflush(stdout);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  while (g_stop == 0) pause();  // signals end the wait

  daemon.Stop();  // graceful: drains in-flight requests
  const server::ServerStats stats = daemon.StatsSnapshot();
  std::fprintf(stderr,
               "classminerd: served %llu request(s) on %llu connection(s) "
               "(%llu ok, %llu failed, %llu rejected, %llu deadline, "
               "%llu denied), %llu pipelined, %llu streamed, cache "
               "%llu hit / %llu joined / %llu miss, %llu reader thread(s), "
               "%llu connection(s) still active\n",
               static_cast<unsigned long long>(stats.requests_received),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests_ok),
               static_cast<unsigned long long>(stats.requests_failed),
               static_cast<unsigned long long>(stats.rejected_admission),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.permission_denied),
               static_cast<unsigned long long>(stats.requests_pipelined),
               static_cast<unsigned long long>(stats.responses_streamed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_joined),
               static_cast<unsigned long long>(stats.cache_misses),
               static_cast<unsigned long long>(stats.reader_threads),
               static_cast<unsigned long long>(stats.connections_active));
  return stats.connections_active == 0 ? 0 : 1;
}

// classminerd — the ClassMiner daemon. Serves mine/browse/skim/verify/
// repair over the CMRQ/CMRS wire protocol (see DESIGN.md) so many clients
// can share one mining service:
//
//   classminerd [--host H] [--port N] [--threads N] [--queue N]
//               [--max-conn N] [--media DIR] [--pipeline N]
//               [--chunk BYTES] [--write-queue BYTES] [--no-cache]
//               [--cache-bytes N] [--cache-entries N]
//               [--idle-timeout MS] [--max-errors N]
//               [--scrub-db PATH] [--scrub-interval MS] [--scrub-yield MS]
//               [--scrub-compact] [--chaos SITE=SPEC[,SITE=SPEC...]]
//               [--failpoints list]
//
// The bound port is printed to stdout as "listening on H:P" (useful with
// --port 0, which picks an ephemeral port). SIGTERM/SIGINT stop the daemon
// gracefully: the listener closes, in-flight requests drain and flush
// their responses, and the final stats line goes to stderr.
//
// --scrub-db / --scrub-interval run the background integrity scrubber: a
// low-priority thread that periodically verifies the named database and
// schedules a repair when the audit finds rot (see DESIGN.md).
//
// --chaos arms the named fault-injection sites for chaos testing; SPEC is
// `once`, `always`, `every:N`, or `p:PROB[:SEED]` (e.g.
// `--chaos server.wire.send.torn=p:0.05:7,server.accept.reset=every:20`).
// Only for test rigs — armed sites inject real faults into live traffic.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "server/server.h"
#include "util/failpoint.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: classminerd [--host H] [--port N] [--threads N] "
               "[--queue N] [--max-conn N] [--media DIR] [--pipeline N] "
               "[--chunk BYTES] [--write-queue BYTES] [--no-cache] "
               "[--cache-bytes N] [--cache-entries N] [--idle-timeout MS] "
               "[--max-errors N] [--scrub-db PATH] [--scrub-interval MS] "
               "[--scrub-yield MS] [--scrub-compact] "
               "[--chaos SITE=SPEC[,...]] [--failpoints list]\n");
  return 2;
}

// Parses one `site=spec` chaos entry and arms the site. Returns false on a
// malformed entry.
bool ArmChaosEntry(const std::string& entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string site = entry.substr(0, eq);
  const std::string spec = entry.substr(eq + 1);
  using Spec = classminer::util::FailPoint::Spec;
  if (spec == "once") {
    classminer::util::FailPoint::Arm(site, Spec::Once());
    return true;
  }
  if (spec == "always") {
    classminer::util::FailPoint::Arm(site, Spec::Always());
    return true;
  }
  if (spec.rfind("every:", 0) == 0) {
    const int n = std::atoi(spec.c_str() + 6);
    if (n < 1) return false;
    classminer::util::FailPoint::Arm(site, Spec::EveryN(n));
    return true;
  }
  if (spec.rfind("p:", 0) == 0) {
    const std::string rest = spec.substr(2);
    const size_t colon = rest.find(':');
    const double p = std::atof(rest.substr(0, colon).c_str());
    uint64_t seed = 1;
    if (colon != std::string::npos) {
      seed = static_cast<uint64_t>(std::atoll(rest.c_str() + colon + 1));
      if (seed == 0) seed = 1;
    }
    if (p <= 0.0 || p > 1.0) return false;
    classminer::util::FailPoint::Arm(site, Spec::WithProbability(p, seed));
    return true;
  }
  return false;
}

bool ArmChaos(const std::string& list) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    if (!entry.empty() && !ArmChaosEntry(entry)) return false;
    start = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace classminer;

  server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.worker_threads = std::atoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      options.max_queue = std::atoi(argv[++i]);
    } else if (arg == "--max-conn" && i + 1 < argc) {
      options.max_connections = std::atoi(argv[++i]);
    } else if (arg == "--media" && i + 1 < argc) {
      options.media_dir = argv[++i];
    } else if (arg == "--pipeline" && i + 1 < argc) {
      options.max_pipeline = std::atoi(argv[++i]);
    } else if (arg == "--chunk" && i + 1 < argc) {
      options.stream_chunk_bytes =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--write-queue" && i + 1 < argc) {
      options.max_write_queue_bytes =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--no-cache") {
      options.enable_result_cache = false;
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      options.cache_max_bytes = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--cache-entries" && i + 1 < argc) {
      options.cache_max_entries =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--idle-timeout" && i + 1 < argc) {
      options.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--max-errors" && i + 1 < argc) {
      options.max_session_errors = std::atoi(argv[++i]);
    } else if (arg == "--scrub-db" && i + 1 < argc) {
      options.scrub_db_path = argv[++i];
    } else if (arg == "--scrub-interval" && i + 1 < argc) {
      options.scrub_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--scrub-yield" && i + 1 < argc) {
      options.scrub_max_yield_ms = std::atoi(argv[++i]);
    } else if (arg == "--scrub-compact") {
      options.scrub_compact = true;
    } else if (arg == "--failpoints" && i + 1 < argc) {
      // `--failpoints list` prints the compiled-in fail-point catalogue —
      // what chaos rigs may pass to --chaos — and exits.
      const std::string sub = argv[++i];
      if (sub != "list") return Usage();
      for (const std::string& site : util::FailPoint::KnownSites()) {
        std::printf("%s\n", site.c_str());
      }
      return 0;
    } else if (arg == "--chaos" && i + 1 < argc) {
      if (!ArmChaos(argv[++i])) {
        std::fprintf(stderr, "classminerd: bad --chaos spec\n");
        return Usage();
      }
    } else {
      return Usage();
    }
  }

  server::ClassMinerServer daemon(options);
  const util::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "classminerd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", options.host.c_str(), daemon.port());
  std::fflush(stdout);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  while (g_stop == 0) pause();  // signals end the wait

  daemon.Stop();  // graceful: drains in-flight requests
  const server::ServerStats stats = daemon.StatsSnapshot();
  std::fprintf(stderr,
               "classminerd: served %llu request(s) on %llu connection(s) "
               "(%llu ok, %llu failed, %llu rejected, %llu deadline, "
               "%llu denied), %llu pipelined, %llu streamed, cache "
               "%llu hit / %llu joined / %llu miss, %llu reader thread(s), "
               "%llu connection(s) still active\n",
               static_cast<unsigned long long>(stats.requests_received),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests_ok),
               static_cast<unsigned long long>(stats.requests_failed),
               static_cast<unsigned long long>(stats.rejected_admission),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.permission_denied),
               static_cast<unsigned long long>(stats.requests_pipelined),
               static_cast<unsigned long long>(stats.responses_streamed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_joined),
               static_cast<unsigned long long>(stats.cache_misses),
               static_cast<unsigned long long>(stats.reader_threads),
               static_cast<unsigned long long>(stats.connections_active));
  std::fprintf(stderr,
               "classminerd: robustness: %llu idle-closed, %llu protocol "
               "error(s), %llu budget-closed, %llu duplicate id(s), "
               "idempotent %llu hit / %llu joined, scrub %llu pass(es) / "
               "%llu dirty / %llu repaired / %llu repair-failed\n",
               static_cast<unsigned long long>(stats.idle_closed),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(stats.error_budget_closed),
               static_cast<unsigned long long>(stats.duplicate_request_ids),
               static_cast<unsigned long long>(stats.idempotent_hits),
               static_cast<unsigned long long>(stats.idempotent_joined),
               static_cast<unsigned long long>(stats.scrub_passes),
               static_cast<unsigned long long>(stats.scrub_dirty),
               static_cast<unsigned long long>(stats.scrub_repairs),
               static_cast<unsigned long long>(stats.scrub_repair_failures));
  return stats.connections_active == 0 ? 0 : 1;
}

// Medical video library: mine a multi-video corpus, build the hierarchical
// database index, and run access-controlled similarity queries.
//
//   ./example_medical_library

#include <cstdio>

#include "core/classminer.h"
#include "index/access_control.h"
#include "index/hier_index.h"
#include "index/linear_index.h"
#include "synth/corpus.h"

int main() {
  using namespace classminer;

  // 1. Mine a small corpus into the database.
  synth::CorpusOptions copts;
  copts.scale = 0.5;  // keep the example fast
  const std::vector<synth::GeneratedVideo> corpus =
      synth::GenerateMedicalCorpus(copts);

  index::VideoDatabase db;
  for (const synth::GeneratedVideo& g : corpus) {
    util::StatusOr<core::MiningResult> mined =
        core::MineVideo(g.video, g.audio);
    if (!mined.ok()) {
      std::fprintf(stderr, "mining '%s' failed: %s\n",
                   g.video.name().c_str(),
                   mined.status().ToString().c_str());
      return 1;
    }
    db.AddVideo(g.video.name(), std::move(mined->structure),
                std::move(mined->events));
    std::printf("ingested '%s'\n", g.video.name().c_str());
  }
  std::printf("database: %d videos, %zu shots\n", db.video_count(),
              db.TotalShotCount());

  // 2. Indexes: flat scan vs the cluster-based hierarchy.
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();
  index::LinearIndex linear(&db);
  index::HierarchicalIndex::Options hopts;
  hopts.beam_width = 3;  // wider beam: better recall, still pruned
  index::HierarchicalIndex hier(&db, &concepts, hopts);

  const index::ShotRef query_shot{0, 3};
  index::QueryStats linear_stats, hier_stats;
  const auto linear_hits =
      linear.Search(db.Features(query_shot), 5, &linear_stats);
  const auto hier_hits = hier.Search(db.Features(query_shot), 5, &hier_stats);

  std::printf("\nquery = video 0 shot 3\n");
  std::printf("linear scan:   %zu comparisons, best sim %.3f\n",
              linear_stats.TotalComparisons(),
              linear_hits.empty() ? 0.0 : linear_hits[0].similarity);
  std::printf("hierarchical:  %zu comparisons (Mc=%zu Msc=%zu Ms=%zu Mo=%zu), "
              "best sim %.3f\n",
              hier_stats.TotalComparisons(), hier_stats.cluster_comparisons,
              hier_stats.subcluster_comparisons, hier_stats.scene_comparisons,
              hier_stats.shot_comparisons,
              hier_hits.empty() ? 0.0 : hier_hits[0].similarity);

  // 3. Access control: a student (clearance 1) cannot see clinical footage.
  // Query with a clinical shot so restricted material ranks highly.
  index::ShotRef clinical_shot{0, 0};
  for (const index::ShotRef& ref : db.AllShots()) {
    if (db.video(ref.video_id).EventOfShot(ref.shot_index) ==
        events::EventType::kClinicalOperation) {
      clinical_shot = ref;
      break;
    }
  }
  index::AccessController ac(&concepts);
  index::UserCredential student{"student", 1, {}};
  index::UserCredential surgeon{"surgeon", 3, {}};
  const auto all = linear.Search(db.Features(clinical_shot), 20);
  std::printf("\nquery = clinical shot %d:%d; results visible: surgeon %zu "
              "/ student %zu (of %zu)\n",
              clinical_shot.video_id, clinical_shot.shot_index,
              ac.FilterMatches(surgeon, db, all).size(),
              ac.FilterMatches(student, db, all).size(), all.size());
  return 0;
}

// classminer — command-line front end over the library. Covers the full
// archive workflow on CMV containers:
//
//   classminer generate <out.cmv> [--title NAME] [--seed N] [--degraded]
//   classminer mine <in.cmv> [--threads N] [--strict] [--fast]
//   classminer search <in.cmv> <presentation|dialog|clinical_operation>
//   classminer skim <in.cmv> [--level N] [--html out.html]
//                            [--storyboard out.ppm]
//   classminer browse [--clearance N] [--strict] <in.cmv> [more.cmv ...]
//   classminer index <db.cmdb> [--strict] [--threads N] [--shards N]
//                              [--append] <in.cmv ...>
//   classminer verify <db.cmdb>
//   classminer repair <db.cmdb> [--media DIR] [--threads N]
//   classminer compact <db.cmdb> [--shard K] [--force]
//   classminer failpoints
//
// `generate` synthesises one of the five corpus titles (or the quickstart
// clip when no title is given) and encodes it; every other command decodes
// and mines a container on the fly.
//
// By default containers load through salvage parsing and mine under the
// degraded failure policy, so a truncated or bit-flipped archive still
// yields a (flagged) result; --strict restores all-or-nothing semantics.
//
// `index` persists the mined results as an atomic-generation CMDB (the
// previous file survives at <db>.cmdb.prev, an advisory manifest at
// <db>.cmdb.manifest); `verify` audits one database file (strict parse,
// per-entry checksums, degraded count, manifest) and exits non-zero unless
// it is pristine; `repair` re-mines every degraded entry from its source
// container <DIR>/<name>.cmv and rewrites the database when it healed
// anything (or when the open itself needed the backup generation or a
// salvage parse).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codec/decoder.h"
#include "core/cmv_pipeline.h"
#include "index/persist.h"
#include "index/shard.h"
#include "server/ops.h"
#include "skim/storyboard.h"
#include "skim/summary.h"
#include "synth/corpus.h"
#include "util/failpoint.h"

namespace {

using namespace classminer;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  classminer generate <out.cmv> [--title NAME] [--seed N] "
      "[--degraded]\n"
      "  classminer mine <in.cmv> [--threads N] [--strict] [--fast]\n"
      "  classminer search <in.cmv> "
      "<presentation|dialog|clinical_operation>\n"
      "  classminer skim <in.cmv> [--level N] [--html out.html] "
      "[--storyboard out.ppm]\n"
      "  classminer browse [--clearance N] [--strict] <in.cmv> "
      "[more.cmv ...]\n"
      "  classminer index <db.cmdb> [--strict] [--threads N] [--shards N] "
      "[--append] <in.cmv ...>\n"
      "  classminer verify <db.cmdb>\n"
      "  classminer repair <db.cmdb> [--media DIR] [--threads N]\n"
      "  classminer compact <db.cmdb> [--shard K] [--force]\n"
      "  classminer failpoints\n");
  return 2;
}

// Loads and mines one container. The default is the resilient path —
// salvage parsing plus the degraded failure policy — so damaged archives
// still yield flagged results; `strict` restores all-or-nothing semantics.
// `fast` mines through the compressed-domain pipeline.
bool LoadAndMine(const std::string& path, codec::CmvFile* file,
                 core::MiningResult* result,
                 core::MiningOptions options = {}, bool strict = false,
                 bool fast = false) {
  util::SalvageReport salvage;
  util::StatusOr<codec::CmvFile> loaded =
      strict ? codec::CmvFile::LoadFromFile(path)
             : codec::CmvFile::LoadFromFileBestEffort(path, &salvage);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return false;
  }
  if (!strict) options.failure_policy = core::FailurePolicy::kDegraded;
  util::StatusOr<core::MiningResult> mined =
      fast ? core::MineCmvFileFast(*loaded, options)
           : core::MineCmvFile(*loaded, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "%s: mining failed: %s\n", path.c_str(),
                 mined.status().ToString().c_str());
    return false;
  }
  *file = std::move(*loaded);
  *result = std::move(*mined);
  result->salvage.Merge(salvage);
  if (result->salvage.salvaged) result->degraded = true;
  return true;
}

// Advisory output from the shared operation layer — degradation notes and
// per-stage timing — goes to stderr: stdout carries only the deterministic
// report, byte-identical to the classminerd response body.
void PrintDiagnostics(const server::OpDiagnostics& diag) {
  for (const std::string& note : diag.notes) {
    std::fprintf(stderr, "%s\n", note.c_str());
  }
  for (const std::string& table : diag.metrics) {
    std::fprintf(stderr, "%s", table.c_str());
  }
}

// Prints a failed operation and converts it to an exit code.
int FinishOp(const server::OpResult& op, const server::OpDiagnostics& diag) {
  std::printf("%s", op.report.c_str());
  PrintDiagnostics(diag);
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status.ToString().c_str());
    return 1;
  }
  return 0;
}

// One stderr block describing what a degraded run lost (silent otherwise).
void ReportDegradation(const std::string& path,
                       const core::MiningResult& result) {
  if (!result.degraded) return;
  std::fprintf(stderr, "%s: degraded result\n", path.c_str());
  for (const core::StageFailure& f : result.stage_failures) {
    std::fprintf(stderr, "  stage %-8s %s\n", f.stage.c_str(),
                 f.status.ToString().c_str());
  }
  const std::string salvage = result.salvage.ToString();
  if (!salvage.empty()) std::fprintf(stderr, "  %s\n", salvage.c_str());
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string out = args[0];
  std::string title;
  uint64_t seed = 11;
  bool degraded = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--title" && i + 1 < args.size()) {
      title = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::stoull(args[++i]);
    } else if (args[i] == "--degraded") {
      degraded = true;
    } else {
      return Usage();
    }
  }

  synth::VideoScript script;
  if (title.empty()) {
    script = synth::QuickScript(seed);
  } else {
    synth::CorpusOptions copts;
    copts.seed = seed;
    copts.degraded = degraded;
    bool found = false;
    for (synth::VideoScript& s : synth::MedicalCorpusScripts(copts)) {
      if (s.name == title) {
        script = std::move(s);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown title '%s'; corpus titles:\n",
                   title.c_str());
      for (const synth::VideoScript& s : synth::MedicalCorpusScripts()) {
        std::fprintf(stderr, "  %s\n", s.name.c_str());
      }
      return 1;
    }
  }

  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  const codec::CmvFile file = core::PackGeneratedVideo(g);
  const util::Status status = file.SaveToFile(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d frames @ %.1f fps, %zu kB video payload, "
              "%.1f s audio\n",
              out.c_str(), file.frame_count(), file.fps,
              file.VideoPayloadBytes() / 1024,
              g.audio.DurationSeconds());
  return 0;
}

int CmdMine(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  core::MiningOptions options;
  bool strict = false;
  bool fast = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      options.thread_count = std::stoi(args[++i]);
    } else if (args[i] == "--strict") {
      strict = true;
    } else if (args[i] == "--fast") {
      fast = true;
    } else {
      return Usage();
    }
  }
  server::OpEnv env;
  env.mining = options;
  server::OpDiagnostics diag;
  return FinishOp(server::MineOp(args[0], fast, strict, env, &diag), diag);
}

int CmdSearch(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  events::EventType wanted;
  if (args[1] == "presentation") {
    wanted = events::EventType::kPresentation;
  } else if (args[1] == "dialog") {
    wanted = events::EventType::kDialog;
  } else if (args[1] == "clinical_operation") {
    wanted = events::EventType::kClinicalOperation;
  } else {
    return Usage();
  }

  codec::CmvFile file;
  core::MiningResult result;
  if (!LoadAndMine(args[0], &file, &result)) return 1;

  int hits = 0;
  for (const events::EventRecord& rec : result.events) {
    if (rec.type != wanted) continue;
    const structure::Scene& scene =
        result.structure.scenes[static_cast<size_t>(rec.scene_index)];
    const std::vector<int> shots =
        result.structure.ShotIndicesOfScene(scene);
    const shot::Shot& first =
        result.structure.shots[static_cast<size_t>(shots.front())];
    const shot::Shot& last =
        result.structure.shots[static_cast<size_t>(shots.back())];
    std::printf("scene %d: %.1fs - %.1fs (%zu shots)\n", scene.index,
                first.StartSeconds(file.fps), last.EndSeconds(file.fps),
                shots.size());
    ++hits;
  }
  std::printf("%d %s scene(s)\n", hits, events::EventTypeName(wanted));
  return 0;
}

int CmdSkim(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  int level = 3;
  std::string html_path, storyboard_path;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--level" && i + 1 < args.size()) {
      level = std::stoi(args[++i]);
    } else if (args[i] == "--html" && i + 1 < args.size()) {
      html_path = args[++i];
    } else if (args[i] == "--storyboard" && i + 1 < args.size()) {
      storyboard_path = args[++i];
    } else {
      return Usage();
    }
  }
  if (level < 1 || level > skim::kSkimLevels) return Usage();

  server::OpEnv env;
  server::OpDiagnostics diag;
  codec::CmvFile file;
  core::MiningResult result;
  const server::OpResult op =
      server::SkimOp(args[0], level, env, &diag, &file, &result);
  std::printf("%s", op.report.c_str());
  if (!op.ok()) {
    PrintDiagnostics(diag);
    std::fprintf(stderr, "%s\n", op.status.ToString().c_str());
    return 1;
  }

  if (!html_path.empty() || !storyboard_path.empty()) {
    // Exports rebuild the skim from the op's mining result (no re-mine).
    const skim::ScalableSkim sk(&result.structure);
    if (!html_path.empty()) {
      const util::Status status = skim::ExportHtmlSummary(
          result.structure, result.events, sk, file.name, html_path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", html_path.c_str());
    }
    if (!storyboard_path.empty()) {
      util::StatusOr<media::Video> video = codec::DecodeVideo(file);
      if (!video.ok()) return 1;
      const util::Status status = skim::ExportStoryboard(
          sk, level, *video, result.events, storyboard_path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", storyboard_path.c_str());
    }
  }
  PrintDiagnostics(diag);
  return 0;
}

int CmdBrowse(const std::vector<std::string>& args) {
  int clearance = 3;
  bool strict = false;
  std::vector<std::string> paths;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--clearance" && i + 1 < args.size()) {
      clearance = std::stoi(args[++i]);
    } else if (args[i] == "--strict") {
      strict = true;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return Usage();

  index::UserCredential user;
  user.name = "cli";
  user.clearance = clearance;
  server::OpEnv env;
  server::OpDiagnostics diag;
  return FinishOp(server::BrowseOp(paths, strict, user, env, &diag), diag);
}

int CmdIndex(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const std::string db_path = args[0];
  core::MiningOptions options;
  bool strict = false;
  bool append = false;
  int shards = 0;
  std::vector<std::string> paths;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      options.thread_count = std::stoi(args[++i]);
    } else if (args[i] == "--strict") {
      strict = true;
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      shards = std::stoi(args[++i]);
    } else if (args[i] == "--append") {
      append = true;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty() || shards < 0) return Usage();

  index::VideoDatabase db;
  for (const std::string& path : paths) {
    codec::CmvFile file;
    core::MiningResult result;
    if (!LoadAndMine(path, &file, &result, options, strict)) return 1;
    ReportDegradation(path, result);
    db.AddVideo(file.name, std::move(result.structure),
                std::move(result.events), result.degraded);
  }

  if (append) {
    // Incremental indexing into an existing sharded library: each mined
    // video is one O(entry) append (re-indexed names supersede their old
    // record), never a whole-library rewrite.
    util::StatusOr<std::unique_ptr<index::ShardedDatabase>> sdb =
        index::ShardedDatabase::Open(db_path);
    if (!sdb.ok()) {
      std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                   sdb.status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < db.video_count(); ++i) {
      index::VideoEntry entry = db.video(i);
      const util::Status up =
          (*sdb)->Upsert(entry.name, std::move(entry.structure),
                         std::move(entry.events), entry.degraded);
      if (!up.ok()) {
        std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                     up.ToString().c_str());
        return 1;
      }
    }
    std::printf("appended %d video(s) into %s: %d total, %llu dead "
                "record(s)\n",
                db.video_count(), db_path.c_str(), (*sdb)->live_count(),
                static_cast<unsigned long long>((*sdb)->dead_records()));
    return 0;
  }

  // --shards N writes the hash-partitioned append-log layout; without it
  // the save keeps whatever layout the path already has (sharded paths stay
  // sharded, fresh paths get the monolithic format).
  const util::Status saved =
      shards > 0 ? index::SaveShardedDatabase(db, db_path, shards)
                 : index::SaveDatabase(db, db_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d video(s), %zu shots, %d degraded\n",
              db_path.c_str(), db.video_count(), db.TotalShotCount(),
              db.DegradedCount());
  return 0;
}

int CmdVerify(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const server::OpResult op = server::VerifyOp(args[0]);
  std::printf("%s", op.report.c_str());
  return op.ok() ? 0 : 1;
}

int CmdRepair(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string db_path = args[0];
  core::MiningOptions options;
  std::string media_dir;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--media" && i + 1 < args.size()) {
      media_dir = args[++i];
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      options.thread_count = std::stoi(args[++i]);
    } else {
      return Usage();
    }
  }

  server::OpEnv env;
  env.mining = options;
  env.media_dir = media_dir;
  server::OpDiagnostics diag;
  const server::OpResult op = server::RepairOp(db_path, env, &diag);
  std::printf("%s", op.report.c_str());
  PrintDiagnostics(diag);
  if (!op.ok()) {
    if (op.report.empty()) {
      std::fprintf(stderr, "%s\n", op.status.ToString().c_str());
    }
    return 1;
  }
  return 0;
}

int CmdCompact(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string db_path = args[0];
  int shard = -1;
  bool force = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--shard" && i + 1 < args.size()) {
      shard = std::stoi(args[++i]);
    } else if (args[i] == "--force") {
      force = true;
    } else {
      return Usage();
    }
  }
  const server::OpResult op = server::CompactOp(db_path, shard, force);
  std::printf("%s", op.report.c_str());
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Prints the compiled-in fail-point catalogue (same list as
// `classminerd --failpoints list`), one site per line.
int CmdFailpoints(const std::vector<std::string>& args) {
  if (!args.empty()) return Usage();
  for (const std::string& site : util::FailPoint::KnownSites()) {
    std::printf("%s\n", site.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "mine") return CmdMine(args);
  if (cmd == "search") return CmdSearch(args);
  if (cmd == "skim") return CmdSkim(args);
  if (cmd == "browse") return CmdBrowse(args);
  if (cmd == "index") return CmdIndex(args);
  if (cmd == "verify") return CmdVerify(args);
  if (cmd == "repair") return CmdRepair(args);
  if (cmd == "compact") return CmdCompact(args);
  if (cmd == "failpoints") return CmdFailpoints(args);
  return Usage();
}

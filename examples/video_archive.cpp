// Video archive workflow: encode a video into the CMV container (the
// database's at-rest format), mine it straight from the compressed file,
// persist the mined database, reload it, and export representative frames
// as PPM images — the complete ingest-to-browse loop.
//
//   ./example_video_archive [output_dir]

#include <cstdio>
#include <string>

#include "codec/decoder.h"
#include "core/cmv_pipeline.h"
#include "index/persist.h"
#include "media/ppm.h"
#include "synth/corpus.h"

int main(int argc, char** argv) {
  using namespace classminer;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. Acquire + encode: the archive stores compressed bitstreams.
  const synth::GeneratedVideo source =
      synth::GenerateVideo(synth::QuickScript(55));
  codec::EncoderOptions eopts;
  eopts.quality = 8;
  const codec::CmvFile file = core::PackGeneratedVideo(source, eopts);
  const std::string cmv_path = out_dir + "/" + source.video.name() + ".cmv";
  if (!file.SaveToFile(cmv_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", cmv_path.c_str());
    return 1;
  }
  std::printf("encoded %d frames -> %s (%zu kB video payload)\n",
              file.frame_count(), cmv_path.c_str(),
              file.VideoPayloadBytes() / 1024);

  // 2. Mine directly from the compressed file (DC-image fast path for shot
  //    spans, embedded audio track for the speaker analysis).
  util::StatusOr<codec::CmvFile> loaded = codec::CmvFile::LoadFromFile(cmv_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  util::StatusOr<core::MiningResult> mined = core::MineCmvFileFast(
      *loaded, core::MiningOptions());
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("mined from compressed file: %zu shots, %d scenes, %zu "
              "events\n",
              mined->structure.shots.size(),
              mined->structure.ActiveSceneCount(), mined->events.size());

  // 3. Persist the mined database and reload it.
  index::VideoDatabase db;
  db.AddVideo(source.video.name(), mined->structure, mined->events);
  const std::string db_path = out_dir + "/archive.cmdb";
  if (!index::SaveDatabase(db, db_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", db_path.c_str());
    return 1;
  }
  util::StatusOr<index::VideoDatabase> reloaded =
      index::LoadDatabase(db_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("database round-trip: %d videos, %zu shots -> %s\n",
              reloaded->video_count(), reloaded->TotalShotCount(),
              db_path.c_str());

  // 4. Export each scene's representative frame for human browsing.
  util::StatusOr<media::Video> decoded = codec::DecodeVideo(*loaded);
  if (!decoded.ok()) return 1;
  int exported = 0;
  for (const structure::Scene& scene : mined->structure.scenes) {
    if (scene.eliminated || scene.rep_group < 0) continue;
    const structure::Group& group =
        mined->structure.groups[static_cast<size_t>(scene.rep_group)];
    if (group.rep_shots.empty()) continue;
    const shot::Shot& rep =
        mined->structure.shots[static_cast<size_t>(group.rep_shots[0])];
    char name[128];
    std::snprintf(name, sizeof(name), "%s/scene_%02d_rep.ppm",
                  out_dir.c_str(), scene.index);
    if (media::WritePpm(decoded->frame(rep.rep_frame), name).ok()) {
      ++exported;
    }
  }
  std::printf("exported %d representative frames as PPM\n", exported);
  return 0;
}

// Reproduces Fig. 14: scalable-skim quality scores per layer. The paper's
// five-student questionnaire (Q1 topic coverage, Q2 scenario coverage, Q3
// conciseness; 0-5 each) is replaced by programmatic judges computed from
// scripted ground truth (see skim/evaluator.h for the operationalisation).
//
// Paper shape: Q1 and Q2 rise toward finer levels (level 1 best), Q3 falls
// (level 1 most redundant); level 3 is the best all-round overview layer.

#include <cstdio>

#include "bench/bench_common.h"
#include "skim/evaluator.h"
#include "skim/skimmer.h"

int main(int argc, char** argv) {
  using namespace classminer;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("=== Fig. 14 reproduction: skim quality scores (corpus scale "
              "%.2f) ===\n",
              scale);
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(scale);

  std::printf("\n%6s %10s %10s %10s %10s\n", "level", "Q1 topic",
              "Q2 scenario", "Q3 concise", "overall");
  double best_overall = -1.0;
  int best_level = 0;
  for (int level = 1; level <= skim::kSkimLevels; ++level) {
    std::vector<skim::SkimScores> scores;
    for (const bench::MinedVideo& mv : corpus) {
      const skim::ScalableSkim sk(&mv.result.structure);
      scores.push_back(skim::EvaluateSkimLevel(sk, level, mv.input.truth));
    }
    const skim::SkimScores avg = skim::AverageScores(scores);
    const double overall = (avg.q1 + avg.q2 + avg.q3) / 3.0;
    std::printf("%6d %10.2f %10.2f %10.2f %10.2f\n", level, avg.q1, avg.q2,
                avg.q3, overall);
    if (overall > best_overall) {
      best_overall = overall;
      best_level = level;
    }
  }
  std::printf("\nbest all-round layer: level %d (paper: level 3)\n",
              best_level);
  return 0;
}

// Micro-benchmarks for the checksummed persistence layer: CRC-32
// throughput, CMV serialisation with and without per-record checksums
// (CMV1 vs CMV2), CMDB v3 framed serialise/parse, the salvage scanner on
// pristine input, the full atomic two-generation save, and the sharded
// append-log upsert against the monolithic whole-file rewrite.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/container.h"
#include "codec/encoder.h"
#include "features/histogram.h"
#include "index/database.h"
#include "index/persist.h"
#include "index/shard.h"
#include "media/color.h"
#include "media/draw.h"
#include "media/image.h"
#include "media/video.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/salvage.h"
#include "util/serial.h"

namespace classminer {
namespace {

codec::CmvFile BenchContainer(bool checksums) {
  util::Rng rng(71);
  media::Video video("bench", 12.0);
  media::Image base(96, 72);
  media::FillGradient(&base, media::Rgb{60, 90, 140}, media::Rgb{20, 30, 50});
  for (int i = 0; i < 24; ++i) {
    media::Image f = media::Translated(base, i, i / 2);
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  codec::CmvFile file = codec::EncodeVideo(video, codec::EncoderOptions());
  file.record_checksums = checksums;
  return file;
}

index::VideoDatabase BenchDatabase(int videos) {
  util::Rng rng(72);
  index::VideoDatabase db;
  for (int v = 0; v < videos; ++v) {
    structure::ContentStructure cs;
    for (int i = 0; i < 8; ++i) {
      media::Image img(48, 36, media::HsvToRgb({20.0 * v + 10.0 * i, 0.7, 0.8}));
      media::AddNoise(&img, 4, &rng);
      shot::Shot s;
      s.index = i;
      s.start_frame = i * 30;
      s.end_frame = i * 30 + 29;
      s.rep_frame = s.start_frame + 9;
      s.features = features::ExtractShotFeatures(img);
      cs.shots.push_back(std::move(s));
    }
    db.AddVideo("bench" + std::to_string(v), std::move(cs), {});
  }
  return db;
}

void BM_Crc32(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<uint8_t> bytes(static_cast<size_t>(state.range(0)));
  for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Crc32(bytes.data(), bytes.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// CMV container round-trip with the per-record CRC toggled: arg 0 is the
// legacy CMV1 layout, arg 1 the checksummed CMV2 layout. The delta is the
// integrity tax on the hot serialise/parse path.
void BM_CmvSerialize(benchmark::State& state) {
  const codec::CmvFile file = BenchContainer(state.range(0) != 0);
  size_t bytes = 0;
  for (auto _ : state) {
    const std::vector<uint8_t> out = file.Serialize();
    benchmark::DoNotOptimize(out.data());
    bytes = out.size();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CmvSerialize)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CmvParse(benchmark::State& state) {
  const std::vector<uint8_t> bytes =
      BenchContainer(state.range(0) != 0).Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::CmvFile::Parse(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_CmvParse)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// CMDB v3 framed entries (magic + size + CRC per video) serialise/parse.
void BM_ChecksumedPersist(benchmark::State& state) {
  const index::VideoDatabase db =
      BenchDatabase(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    const std::vector<uint8_t> out = index::SerializeDatabase(db);
    util::StatusOr<index::VideoDatabase> back = index::ParseDatabase(out);
    benchmark::DoNotOptimize(back);
    bytes = out.size();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumedPersist)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// The salvage scanner on pristine input: what a "paranoid open" costs when
// nothing is actually torn.
void BM_SalvageParsePristine(benchmark::State& state) {
  const std::vector<uint8_t> bytes =
      index::SerializeDatabase(BenchDatabase(8));
  for (auto _ : state) {
    util::SalvageReport report;
    benchmark::DoNotOptimize(index::ParseDatabaseSalvage(bytes, &report));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_SalvageParsePristine)->Unit(benchmark::kMicrosecond);

// Full two-generation atomic save: serialise, tmp write, fsync, rotate,
// rename, manifest. Disk-bound; the figure to watch is the overhead on
// top of BM_ChecksumedPersist's pure-CPU round-trip.
void BM_AtomicSaveDatabase(benchmark::State& state) {
  const index::VideoDatabase db = BenchDatabase(8);
  const std::string path = "bench_persist.cmdb";
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::SaveDatabase(db, path));
  }
  std::remove(path.c_str());
  std::remove(index::DatabaseBackupPath(path).c_str());
  std::remove(index::DatabaseManifestPath(path).c_str());
}
BENCHMARK(BM_AtomicSaveDatabase)->Unit(benchmark::kMicrosecond);


// ---------------------------------------------------------------------------
// Sharded append-log tier: the headline scaling claim. A monolithic upsert
// rewrites the whole library (O(library)); a sharded upsert appends one
// framed entry to one shard log and fsyncs it (O(entry)). The arg is the
// number of entries already in the library — the sharded per-upsert cost
// must stay flat from 1k to 100k while the monolithic one grows linearly.

index::VideoDatabase TinyDatabase(int videos) {
  index::VideoDatabase db;
  for (int v = 0; v < videos; ++v) {
    structure::ContentStructure cs;
    shot::Shot s;
    s.index = 0;
    s.start_frame = 0;
    s.end_frame = 29;
    s.rep_frame = 9;
    cs.shots.push_back(s);
    db.AddVideo("bench" + std::to_string(v), std::move(cs), {});
  }
  return db;
}

void RemoveShardedFiles(const std::string& path) {
  std::remove(path.c_str());
  for (int k = 0; k < 8; ++k) {
    const std::string log = index::ShardPath(path, k);
    std::remove(log.c_str());
    std::remove(index::ShardBackupPath(path, k).c_str());
    std::remove((log + ".tmp").c_str());
  }
}

void BM_ShardedUpsert(benchmark::State& state) {
  const int videos = static_cast<int>(state.range(0));
  const std::string path = "bench_sharded.cmdb";
  RemoveShardedFiles(path);
  if (!index::SaveShardedDatabase(TinyDatabase(videos), path, 8).ok()) {
    state.SkipWithError("sharded save failed");
    return;
  }
  util::StatusOr<std::unique_ptr<index::ShardedDatabase>> db =
      index::ShardedDatabase::Open(path);
  if (!db.ok()) {
    state.SkipWithError("sharded open failed");
    return;
  }
  const index::VideoDatabase one = TinyDatabase(1);
  for (auto _ : state) {
    // Re-upserting an existing name is the steady-state update: one framed
    // append + fsync, regardless of how many entries the library holds.
    const util::Status st = (*db)->Upsert(
        one.video(0).name, one.video(0).structure, one.video(0).events,
        /*degraded=*/false);
    if (!st.ok()) {
      state.SkipWithError("upsert failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  RemoveShardedFiles(path);
}
BENCHMARK(BM_ShardedUpsert)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_MonolithicUpsert(benchmark::State& state) {
  const int videos = static_cast<int>(state.range(0));
  const std::string path = "bench_mono.cmdb";
  index::VideoDatabase db = TinyDatabase(videos);
  for (auto _ : state) {
    // Updating any entry in the monolithic format means re-serialising and
    // atomically rewriting every entry.
    const util::Status st = index::SaveDatabase(db, path);
    if (!st.ok()) {
      state.SkipWithError("save failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
  std::remove(index::DatabaseBackupPath(path).c_str());
  std::remove(index::DatabaseManifestPath(path).c_str());
}
BENCHMARK(BM_MonolithicUpsert)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

// Reproduces Fig. 5: shot detection on a medical-education video with
// per-window adaptive thresholds. Prints (a) detection quality against the
// scripted boundaries and (b) the frame-difference / threshold series
// around a sample of cuts, i.e. the data behind Fig. 5(b). Also runs the
// compressed-domain (DC image) detector for comparison.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "shot/detector.h"

int main() {
  using namespace classminer;
  std::printf("=== Fig. 5 reproduction: adaptive-threshold shot detection "
              "===\n");

  synth::CorpusOptions copts;
  const std::vector<synth::VideoScript> scripts =
      synth::MedicalCorpusScripts(copts);
  const synth::GeneratedVideo g = synth::GenerateVideo(scripts[0]);
  std::printf("video '%s': %d frames, %zu scripted shots\n\n",
              g.video.name().c_str(), g.video.frame_count(),
              g.truth.shots.size());

  // Pixel-domain detection.
  bench::WallTimer pixel_timer;
  shot::ShotDetectionTrace trace;
  const std::vector<shot::Shot> shots =
      shot::DetectShots(g.video, {}, &trace);
  const double pixel_sec = pixel_timer.Seconds();
  const core::CutScore score =
      core::ScoreCuts(trace.cuts, g.truth.CutPositions());
  std::printf("pixel domain:      %zu cuts detected, precision %.3f, "
              "recall %.3f (%.2f s)\n",
              trace.cuts.size(), score.precision, score.recall, pixel_sec);

  // Compressed-domain detection (DC images, Yeo-Liu style).
  codec::EncoderOptions eopts;
  eopts.gop_size = 12;
  const codec::CmvFile file = codec::EncodeVideo(g.video, eopts);
  bench::WallTimer dc_timer;
  const auto dc = codec::DecodeDcImages(file);
  shot::ShotDetectionTrace dc_trace;
  shot::DetectShotsFromDc(*dc, {}, &dc_trace);
  const double dc_sec = dc_timer.Seconds();
  const core::CutScore dc_score =
      core::ScoreCuts(dc_trace.cuts, g.truth.CutPositions());
  std::printf("compressed domain: %zu cuts detected, precision %.3f, "
              "recall %.3f (%.2f s incl. DC extraction)\n\n",
              dc_trace.cuts.size(), dc_score.precision, dc_score.recall,
              dc_sec);

  // Fig. 5(b): the difference series and local threshold around the first
  // few true boundaries.
  std::printf("frame difference vs adaptive threshold near boundaries:\n");
  std::printf("%8s %12s %12s %s\n", "frame", "difference", "threshold",
              "cut?");
  const std::vector<int> truth_cuts = g.truth.CutPositions();
  for (size_t c = 0; c < std::min<size_t>(4, truth_cuts.size()); ++c) {
    const int cut = truth_cuts[c];
    for (int i = std::max(0, cut - 2);
         i <= std::min<int>(static_cast<int>(trace.differences.size()) - 1,
                            cut + 2);
         ++i) {
      const bool is_cut =
          std::find(trace.cuts.begin(), trace.cuts.end(), i) !=
          trace.cuts.end();
      std::printf("%8d %12.4f %12.4f %s\n", i,
                  trace.differences[static_cast<size_t>(i)],
                  trace.thresholds[static_cast<size_t>(i)],
                  is_cut ? "CUT" : "");
    }
    std::printf("     ----\n");
  }

  std::printf("\npaper shape: differences spike above the locally adapted "
              "threshold exactly at shot boundaries;\nthe threshold tracks "
              "local activity so quiet eye-surgery shots keep low "
              "thresholds.\n");
  std::printf("detected %zu shots (truth %zu)\n", shots.size(),
              g.truth.shots.size());
  return 0;
}

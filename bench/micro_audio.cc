// Micro-benchmarks for the audio substrate: clip features, MFCC, GMM
// scoring and the BIC speaker-change test.

#include <benchmark/benchmark.h>

#include "audio/bic.h"
#include "audio/features.h"
#include "audio/gmm.h"
#include "audio/mfcc.h"
#include "synth/audio_generator.h"
#include "util/rng.h"

namespace classminer {
namespace {

audio::AudioBuffer SpeechClip(int speaker, double seconds) {
  audio::AudioBuffer buf(16000);
  util::Rng rng(1000 + static_cast<uint64_t>(speaker));
  synth::AppendSpeech(&buf, synth::MakeSpeakerVoice(speaker), seconds, &rng);
  return buf;
}

void BM_ClipFeatures(benchmark::State& state) {
  const audio::AudioBuffer clip = SpeechClip(1, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audio::ComputeClipFeatures(clip));
  }
}
BENCHMARK(BM_ClipFeatures)->Unit(benchmark::kMillisecond);

void BM_Mfcc(benchmark::State& state) {
  const audio::AudioBuffer clip = SpeechClip(2, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audio::ComputeMfcc(clip));
  }
}
BENCHMARK(BM_Mfcc)->Unit(benchmark::kMillisecond);

void BM_GmmTrain(benchmark::State& state) {
  util::Rng rng(7);
  util::Matrix samples(256, 14);
  for (size_t r = 0; r < samples.rows(); ++r) {
    for (size_t c = 0; c < samples.cols(); ++c) {
      samples.at(r, c) = rng.Gaussian(r % 2 == 0 ? 0.0 : 4.0, 1.0);
    }
  }
  audio::Gmm::TrainOptions opts;
  opts.components = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(audio::Gmm::Train(samples, opts));
  }
}
BENCHMARK(BM_GmmTrain)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BicTest(benchmark::State& state) {
  const util::Matrix a = audio::ComputeMfcc(SpeechClip(1, 2.0));
  const util::Matrix b = audio::ComputeMfcc(SpeechClip(2, 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(audio::BicSpeakerChangeTest(a, b));
  }
}
BENCHMARK(BM_BicTest)->Unit(benchmark::kMillisecond);

void BM_SpeechSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpeechClip(3, 1.0));
  }
}
BENCHMARK(BM_SpeechSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

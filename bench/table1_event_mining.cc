// Reproduces Table 1: event mining results over the five-title corpus.
// For each category prints SN (benchmark scenes), DN (detected), TN
// (true), PR = TN/DN and RE = TN/SN, plus the aggregate row.
//
// Paper: Presentation 15/16/13 (0.81/0.87), Dialog 28/33/24 (0.73/0.85),
// Clinical operation 39/32/21 (0.65/0.54), average PR 0.72 / RE 0.71 —
// Presentation scores highest, Clinical operation lowest.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace classminer;
  double scale = 1.0;
  bool degraded = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--degraded") {
      degraded = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) scale = 1.0;
    }
  }
  std::printf("=== Table 1 reproduction: event mining (corpus scale %.2f%s) "
              "===\n",
              scale, degraded ? ", degraded" : "");
  const std::vector<bench::MinedVideo> corpus =
      bench::MineCorpus(scale, 7, degraded);

  core::EventScoreTable table;
  for (const bench::MinedVideo& mv : corpus) {
    core::AccumulateEventScores(mv.result.structure, mv.result.events,
                                mv.input.truth, &table);
  }
  core::FinalizeEventScores(&table);

  auto print_row = [](const char* name, const core::EventScore& row) {
    std::printf("%-20s %6d %6d %6d %8.2f %8.2f\n", name, row.selected,
                row.detected, row.correct, row.precision, row.recall);
  };
  std::printf("\n%-20s %6s %6s %6s %8s %8s\n", "event", "SN", "DN", "TN",
              "PR", "RE");
  print_row("Presentation", table.presentation);
  print_row("Dialog", table.dialog);
  print_row("Clinical operation", table.clinical);
  print_row("Average", table.Average());

  std::printf("\npaper: PR/RE ~ 0.81/0.87, 0.73/0.85, 0.65/0.54; average "
              "0.72/0.71.\n");
  return 0;
}

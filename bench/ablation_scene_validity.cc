// Ablation: PCS cluster-count selection. The paper proposes validity
// analysis (Eqs. 14-16) over [0.5M, 0.7M] instead of a fixed 40 %
// reduction. Compares both on cluster purity (fraction of clusters whose
// member scenes share a scripted topic) and on the resulting level-4 skim
// compression.

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_common.h"
#include "skim/skimmer.h"

namespace {

using namespace classminer;

// Fraction of clusters whose member scenes all share one scripted topic.
double ClusterPurity(const structure::ContentStructure& cs,
                     const synth::GroundTruth& truth) {
  if (cs.clustered_scenes.empty()) return 0.0;
  int pure = 0;
  for (const structure::SceneCluster& cluster : cs.clustered_scenes) {
    std::set<int> topics;
    for (int scene_index : cluster.scene_indices) {
      const structure::Scene& scene =
          cs.scenes[static_cast<size_t>(scene_index)];
      // Map through the first shot of the scene.
      const std::vector<int> shots = cs.ShotIndicesOfScene(scene);
      if (shots.empty()) continue;
      const int unit =
          core::TruthSceneOfShot(cs.shots[static_cast<size_t>(shots[0])],
                                 truth);
      if (unit >= 0) {
        topics.insert(truth.scenes[static_cast<size_t>(unit)].topic_id);
      }
    }
    if (topics.size() <= 1) ++pure;
  }
  return static_cast<double>(pure) /
         static_cast<double>(cs.clustered_scenes.size());
}

// Fraction of repeated topics (>= 2 scenes) that share a cluster — the
// redundancy-elimination goal of Sec. 3.5.
double RepeatMergeRecall(const structure::ContentStructure& cs,
                         const synth::GroundTruth& truth) {
  std::map<int, std::set<int>> topic_scenes;  // topic -> detected clusters
  std::map<int, int> topic_count;
  for (size_t ci = 0; ci < cs.clustered_scenes.size(); ++ci) {
    for (int scene_index : cs.clustered_scenes[ci].scene_indices) {
      const structure::Scene& scene =
          cs.scenes[static_cast<size_t>(scene_index)];
      const std::vector<int> shots = cs.ShotIndicesOfScene(scene);
      if (shots.empty()) continue;
      const int unit = core::TruthSceneOfShot(
          cs.shots[static_cast<size_t>(shots[0])], truth);
      if (unit < 0) continue;
      const int topic = truth.scenes[static_cast<size_t>(unit)].topic_id;
      topic_scenes[topic].insert(static_cast<int>(ci));
      ++topic_count[topic];
    }
  }
  int repeated = 0, merged = 0;
  for (const auto& [topic, count] : topic_count) {
    if (count < 2) continue;
    ++repeated;
    if (static_cast<int>(topic_scenes[topic].size()) < count) ++merged;
  }
  return repeated > 0 ? static_cast<double>(merged) / repeated : 1.0;
}

}  // namespace

int main() {
  std::printf("=== Ablation: PCS validity analysis vs fixed 40%% reduction "
              "===\n");
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(1.0);

  struct Mode {
    const char* name;
    bool fixed;
  };
  for (const Mode mode : {Mode{"validity-chosen N (paper)", false},
                          Mode{"fixed 40% reduction", true}}) {
    double purity_acc = 0.0;
    double merge_acc = 0.0;
    double fcr_acc = 0.0;
    int clusters_total = 0;
    int scenes_total = 0;
    for (const bench::MinedVideo& mv : corpus) {
      // Re-run only the clustering stage with the ablated policy.
      structure::ContentStructure cs = mv.result.structure;
      structure::SceneClusterOptions copts;
      if (mode.fixed) {
        copts.fixed_clusters = std::max(
            1, static_cast<int>(std::lround(cs.ActiveSceneCount() * 0.6)));
      }
      cs.clustered_scenes =
          structure::ClusterScenes(cs.shots, cs.groups, cs.scenes, copts);
      purity_acc += ClusterPurity(cs, mv.input.truth);
      merge_acc += RepeatMergeRecall(cs, mv.input.truth);
      const skim::ScalableSkim sk(&cs);
      fcr_acc += sk.Fcr(4);
      clusters_total += static_cast<int>(cs.clustered_scenes.size());
      scenes_total += cs.ActiveSceneCount();
    }
    const double n = static_cast<double>(corpus.size());
    std::printf("\n%-28s clusters=%d/%d scenes, purity=%.3f, "
                "repeat-merge recall=%.3f, level-4 FCR=%.3f\n",
                mode.name, clusters_total, scenes_total, purity_acc / n,
                merge_acc / n, fcr_acc / n);
  }
  std::printf("\nexpected: the two policies trade purity against repeat "
              "merging; validity analysis adapts the cluster count per "
              "video instead of assuming a universal 40%% redundancy.\n");
  return 0;
}

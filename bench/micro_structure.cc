// Micro-benchmarks for the structure-mining stages: group detection,
// classification, scene detection and PCS scene clustering, plus the
// end-to-end MineVideo pipeline at 1..N threads (per-stage wall times from
// the PipelineMetrics registry are reported as counters).

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/classminer.h"
#include "media/color.h"
#include "media/draw.h"
#include "structure/content_structure.h"
#include "synth/corpus.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace classminer {
namespace {

std::vector<shot::Shot> MakeShots(int count, int hues) {
  std::vector<shot::Shot> shots;
  util::Rng rng(5);
  for (int i = 0; i < count; ++i) {
    const double hue = (i / 6 % hues) * (360.0 / hues);
    media::Image img(48, 36, media::HsvToRgb({hue, 0.7, 0.8}));
    media::AddNoise(&img, 4, &rng);
    shot::Shot s;
    s.index = i;
    s.start_frame = i * 30;
    s.end_frame = (i + 1) * 30 - 1;
    s.rep_frame = s.start_frame + 9;
    s.features = features::ExtractShotFeatures(img);
    shots.push_back(std::move(s));
  }
  return shots;
}

void BM_DetectGroups(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure::DetectGroups(shots));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectGroups)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_FullStructureMining(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto copy = shots;
    benchmark::DoNotOptimize(structure::MineVideoStructure(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStructureMining)
    ->Arg(60)
    ->Arg(240)
    ->Unit(benchmark::kMillisecond);

void BM_SceneClustering(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 6);
  std::vector<structure::Group> groups = structure::DetectGroups(shots);
  structure::ClassifyGroups(shots, &groups);
  const std::vector<structure::Scene> scenes =
      structure::DetectScenes(shots, groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        structure::ClusterScenes(shots, groups, scenes));
  }
}
BENCHMARK(BM_SceneClustering)->Arg(120)->Unit(benchmark::kMillisecond);

// PCS clustering with a shared pool: the pairwise centroid matrix and the
// validity index fan out, the merge scan stays serial (bit-identical).
void BM_SceneClusteringThreads(benchmark::State& state) {
  const auto shots = MakeShots(120, 6);
  std::vector<structure::Group> groups = structure::DetectGroups(shots);
  structure::ClassifyGroups(shots, &groups);
  const std::vector<structure::Scene> scenes =
      structure::DetectScenes(shots, groups);
  const int threads = static_cast<int>(state.range(0));
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure::ClusterScenes(
        shots, groups, scenes, {}, nullptr, threads > 1 ? &pool : nullptr));
  }
}
BENCHMARK(BM_SceneClusteringThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// End-to-end MineVideo on one synthetic title at a given thread count.
// Per-stage mean wall times land in the bench counters, so a run shows
// both the speedup and where the remaining time goes.
void BM_MineVideoThreads(benchmark::State& state) {
  const synth::GeneratedVideo video =
      synth::GenerateVideo(synth::QuickScript(17));
  core::MiningOptions options;
  options.thread_count = static_cast<int>(state.range(0));
  core::PipelineMetrics accumulated;
  int64_t runs = 0;
  for (auto _ : state) {
    util::StatusOr<core::MiningResult> mined =
        core::MineVideo(video.video, video.audio, options);
    if (!mined.ok()) std::abort();
    core::MiningResult& result = *mined;
    benchmark::DoNotOptimize(result);
    for (const core::StageMetrics& s : result.metrics.stages) {
      bool found = false;
      for (core::StageMetrics& a : accumulated.stages) {
        if (a.name == s.name) {
          a.wall_ms += s.wall_ms;
          found = true;
          break;
        }
      }
      if (!found) accumulated.stages.push_back(s);
    }
    ++runs;
  }
  for (const core::StageMetrics& s : accumulated.stages) {
    state.counters[s.name + "_ms"] =
        benchmark::Counter(s.wall_ms / static_cast<double>(runs));
  }
  state.SetItemsProcessed(runs * video.video.frame_count());
}
BENCHMARK(BM_MineVideoThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

// DAG vs sequential stage scheduling at a fixed thread count. Sequential
// runs one stage at a time (intra-stage loops still fan out); the DAG also
// overlaps independent stages (audio / structure chain / cues), so its
// wall-clock should be at or below the sequential baseline.
void BM_StageScheduling(benchmark::State& state) {
  const synth::GeneratedVideo video =
      synth::GenerateVideo(synth::QuickScript(17));
  core::MiningOptions options;
  options.thread_count = 4;
  options.scheduling = state.range(0) == 0
                           ? core::StageScheduling::kSequential
                           : core::StageScheduling::kDag;
  for (auto _ : state) {
    util::StatusOr<core::MiningResult> mined =
        core::MineVideo(video.video, video.audio, options);
    if (!mined.ok()) std::abort();
    benchmark::DoNotOptimize(*mined);
  }
  state.SetLabel(state.range(0) == 0 ? "sequential" : "dag");
  state.SetItemsProcessed(state.iterations() * video.video.frame_count());
}
BENCHMARK(BM_StageScheduling)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

// Micro-benchmarks for the structure-mining stages: group detection,
// classification, scene detection and PCS scene clustering.

#include <benchmark/benchmark.h>

#include "media/color.h"
#include "media/draw.h"
#include "structure/content_structure.h"
#include "util/rng.h"

namespace classminer {
namespace {

std::vector<shot::Shot> MakeShots(int count, int hues) {
  std::vector<shot::Shot> shots;
  util::Rng rng(5);
  for (int i = 0; i < count; ++i) {
    const double hue = (i / 6 % hues) * (360.0 / hues);
    media::Image img(48, 36, media::HsvToRgb({hue, 0.7, 0.8}));
    media::AddNoise(&img, 4, &rng);
    shot::Shot s;
    s.index = i;
    s.start_frame = i * 30;
    s.end_frame = (i + 1) * 30 - 1;
    s.rep_frame = s.start_frame + 9;
    s.features = features::ExtractShotFeatures(img);
    shots.push_back(std::move(s));
  }
  return shots;
}

void BM_DetectGroups(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure::DetectGroups(shots));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectGroups)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_FullStructureMining(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto copy = shots;
    benchmark::DoNotOptimize(structure::MineVideoStructure(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStructureMining)
    ->Arg(60)
    ->Arg(240)
    ->Unit(benchmark::kMillisecond);

void BM_SceneClustering(benchmark::State& state) {
  const auto shots = MakeShots(static_cast<int>(state.range(0)), 6);
  std::vector<structure::Group> groups = structure::DetectGroups(shots);
  structure::ClassifyGroups(shots, &groups);
  const std::vector<structure::Scene> scenes =
      structure::DetectScenes(shots, groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        structure::ClusterScenes(shots, groups, scenes));
  }
}
BENCHMARK(BM_SceneClustering)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

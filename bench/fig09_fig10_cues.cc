// Reproduces Figs. 9-10 (qualitative): visual cue extraction over the
// corpus representative frames. Prints per-cue detection counts against
// the scripted truth — special frames (black/slide/clip-art/sketch,
// Fig. 9) and face / blood-red / skin regions (Fig. 10).

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace classminer;
  std::printf("=== Figs. 9-10 reproduction: visual cue detection ===\n");
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(1.0);

  int slide_truth = 0, slide_hit = 0, slide_false = 0;
  int face_truth = 0, face_hit = 0, face_false = 0;
  int skin_truth = 0, skin_hit = 0;
  int blood_truth = 0, blood_hit = 0;
  int shots_total = 0;

  for (const bench::MinedVideo& mv : corpus) {
    const auto& shots = mv.result.structure.shots;
    for (size_t i = 0; i < shots.size(); ++i) {
      ++shots_total;
      const cues::FrameCues& c = mv.result.shot_cues[i];
      // Bridge the detected shot to the scripted one via its rep frame.
      const synth::ShotTruth* t = nullptr;
      for (const synth::ShotTruth& st : mv.input.truth.shots) {
        if (shots[i].rep_frame >= st.start_frame &&
            shots[i].rep_frame <= st.end_frame) {
          t = &st;
          break;
        }
      }
      if (t == nullptr) continue;
      if (t->is_slide) {
        ++slide_truth;
        if (c.IsSlideOrClipArt()) ++slide_hit;
      } else if (c.IsSlideOrClipArt()) {
        ++slide_false;
      }
      if (t->has_face) {
        ++face_truth;
        if (c.has_face) ++face_hit;
      } else if (c.has_face) {
        ++face_false;
      }
      if (t->has_skin_closeup) {
        ++skin_truth;
        if (c.skin_closeup) ++skin_hit;
      }
      if (t->has_blood) {
        ++blood_truth;
        if (c.has_blood) ++blood_hit;
      }
    }
  }

  std::printf("\n%-22s %8s %8s %8s %10s\n", "cue", "truth", "hits",
              "false+", "recall");
  auto row = [](const char* name, int truth, int hit, int falsep) {
    std::printf("%-22s %8d %8d %8d %10.3f\n", name, truth, hit, falsep,
                truth > 0 ? static_cast<double>(hit) / truth : 0.0);
  };
  row("slide / clip-art", slide_truth, slide_hit, slide_false);
  row("face", face_truth, face_hit, face_false);
  row("skin close-up", skin_truth, skin_hit, 0);
  row("blood-red region", blood_truth, blood_hit, 0);
  std::printf("(over %d detected shots)\n", shots_total);
  std::printf("\npaper shape: man-made frames and face/skin/blood regions "
              "are reliably separable from natural footage.\n");
  return 0;
}

// Reproduces the Sec. 6.2 analysis: retrieval cost of the flat scan
// (Eq. 24: Te = NT * Tm + O(NT log NT)) versus the cluster-based
// multi-level index (Eq. 25: Tc = Mc*Tc + Msc*Tsc + Ms*Ts + Mo*To +
// O(Mo log Mo)). Sweeps the database size by ingesting replicated mined
// corpora and reports per-query wall time and similarity-comparison counts
// at each level.
//
// Paper shape: Tc << Te, and Tc grows far slower than linearly in NT.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "index/hier_index.h"
#include "index/linear_index.h"

int main(int argc, char** argv) {
  using namespace classminer;
  const int max_copies = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("=== Sec. 6.2 reproduction: cluster-based indexing vs linear "
              "scan ===\n");
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(1.0);
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();

  std::printf("\n%8s %8s | %12s %12s | %12s %12s | %8s %8s %8s %8s\n", "NT",
              "videos", "Te us/query", "cmp/query", "Tc us/query",
              "cmp/query", "Mc", "Msc", "Ms", "Mo");

  for (int copies = 1; copies <= max_copies; copies *= 2) {
    index::VideoDatabase db;
    for (int c = 0; c < copies; ++c) {
      for (const bench::MinedVideo& mv : corpus) {
        db.AddVideo(mv.input.video.name() + "_" + std::to_string(c),
                    mv.result.structure, mv.result.events);
      }
    }
    const index::LinearIndex linear(&db);
    const index::HierarchicalIndex hier(&db, &concepts);

    // Query workload: every 7th shot of the base corpus.
    std::vector<features::ShotFeatures> queries;
    for (const bench::MinedVideo& mv : corpus) {
      for (size_t s = 0; s < mv.result.structure.shots.size(); s += 7) {
        queries.push_back(mv.result.structure.shots[s].features);
      }
    }

    double te_us = 0.0, tc_us = 0.0;
    size_t te_cmp = 0, tc_cmp = 0, mc = 0, msc = 0, ms = 0, mo = 0;
    constexpr int kTopK = 10;
    for (const features::ShotFeatures& q : queries) {
      index::QueryStats stats;
      linear.Search(q, kTopK, &stats);
      te_us += stats.elapsed_us;
      te_cmp += stats.TotalComparisons();
      hier.Search(q, kTopK, &stats);
      tc_us += stats.elapsed_us;
      tc_cmp += stats.TotalComparisons();
      mc += stats.cluster_comparisons;
      msc += stats.subcluster_comparisons;
      ms += stats.scene_comparisons;
      mo += stats.shot_comparisons;
    }
    const double nq = static_cast<double>(queries.size());
    std::printf("%8zu %8d | %12.1f %12.0f | %12.1f %12.0f | %8.1f %8.1f "
                "%8.1f %8.1f\n",
                db.TotalShotCount(), db.video_count(), te_us / nq,
                te_cmp / nq, tc_us / nq, tc_cmp / nq, mc / nq, msc / nq,
                ms / nq, mo / nq);
  }

  std::printf("\npaper: (Mc + Msc + Ms + Mo) << NT and per-level costs use "
              "reduced feature subspaces, hence Tc << Te.\n");
  return 0;
}

// Multi-client load driver for classminerd: starts the daemon in-process,
// hammers it from concurrent client sessions, and records request latency
// percentiles, throughput, and the observability counters (admission
// rejections, deadline misses) into BENCH_server.json.
//
// Three throughput phases:
//   serial     — v1 clients, one request at a time (the PR6 baseline shape);
//   pipelined  — v2 sessions with --pipeline-depth requests in flight while
//                --idle-conns parked connections sit on the reactor;
//   cache_hit  — a fresh daemon with the result cache on, so every request
//                after the first is served from the shared mining cache.
// The serial/pipelined phases run with the cache disabled so they measure
// the transport, not the cache.
//
//   server_load [out.json] [clients] [requests-per-client]
//               [--idle-conns N] [--pipeline-depth D]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/cmv_pipeline.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "synth/corpus.h"
#include "util/retry.h"

namespace {

using namespace classminer;

std::string WriteTestContainer(const std::string& path) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(17));
  const codec::CmvFile file = core::PackGeneratedVideo(g);
  const util::Status saved = file.SaveToFile(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    std::abort();
  }
  return path;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct PhaseResult {
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  int failures = 0;
  double p50() const { return Percentile(latencies_ms, 0.50); }
  double p99() const { return Percentile(latencies_ms, 0.99); }
  double qps() const {
    return wall_seconds > 0 ? latencies_ms.size() / wall_seconds : 0.0;
  }
};

// Serial v1 clients: one request at a time per session, util::Retry
// absorbing admission rejections — the PR6 baseline workload shape.
PhaseResult RunSerialPhase(int port, const std::string& cmv, int clients,
                           int per_client) {
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  bench::WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      server::SessionHello hello;
      hello.user = "load" + std::to_string(c);
      hello.clearance = 3;
      util::StatusOr<server::Client> client =
          server::Client::Connect("127.0.0.1", port, hello);
      if (!client.ok()) {
        ++failures;
        return;
      }
      util::RetryOptions retry;
      retry.max_attempts = 64;
      retry.initial_backoff_ms = 2.0;
      retry.max_backoff_ms = 200.0;
      retry.jitter_seed = 1000 + static_cast<uint64_t>(c);
      for (int r = 0; r < per_client; ++r) {
        bench::WallTimer timer;
        util::StatusOr<std::string> report = util::RetryOr<std::string>(
            retry, [&]() -> util::StatusOr<std::string> {
              return client->CallForReport(server::RequestKind::kMine,
                                           {cmv, "--fast"});
            });
        if (report.ok()) {
          latencies[static_cast<size_t>(c)].push_back(timer.Seconds() *
                                                      1000.0);
        } else {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseResult result;
  result.wall_seconds = wall.Seconds();
  for (const std::vector<double>& per : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), per.begin(),
                               per.end());
  }
  result.failures = failures.load();
  return result;
}

// Pipelined v2 sessions: `depth` requests in flight per session, responses
// completing out of order. An admission rejection (kUnavailable inside the
// response) is re-offered with backoff; the latency of a request spans its
// first issue to its accepted response, retries included.
PhaseResult RunPipelinedPhase(int port, const std::string& cmv, int clients,
                              int per_client, int depth) {
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  bench::WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      server::SessionHello hello;
      hello.user = "pipe" + std::to_string(c);
      hello.clearance = 3;
      util::StatusOr<std::unique_ptr<server::PipelinedClient>> client =
          server::PipelinedClient::Connect("127.0.0.1", port, hello);
      if (!client.ok()) {
        ++failures;
        return;
      }
      const auto make_request = [&] {
        server::Request request;
        request.kind = server::RequestKind::kMine;
        request.args = {cmv, "--fast"};
        return request;
      };
      struct Slot {
        bench::WallTimer timer;  // spans retries: first issue -> accepted
        int attempts = 0;
        std::future<util::StatusOr<server::Response>> future;
      };
      std::deque<Slot> window;
      int issued = 0;
      const auto issue = [&](Slot slot) {
        ++slot.attempts;
        slot.future = (*client)->AsyncCall(make_request());
        window.push_back(std::move(slot));
      };
      while (issued < per_client || !window.empty()) {
        while (issued < per_client &&
               static_cast<int>(window.size()) < depth) {
          issue(Slot{});
          ++issued;
        }
        Slot slot = std::move(window.front());
        window.pop_front();
        util::StatusOr<server::Response> response = slot.future.get();
        if (!response.ok()) {  // transport death: nothing will complete
          ++failures;
          return;
        }
        if (response->code == util::StatusCode::kUnavailable &&
            slot.attempts < 64) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min(200, 2 << std::min(slot.attempts, 6))));
          issue(std::move(slot));
          continue;
        }
        if (response->ok()) {
          latencies[static_cast<size_t>(c)].push_back(slot.timer.Seconds() *
                                                      1000.0);
        } else {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseResult result;
  result.wall_seconds = wall.Seconds();
  for (const std::vector<double>& per : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), per.begin(),
                               per.end());
  }
  result.failures = failures.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_server.json";
  int clients = 8;
  int per_client = 8;
  int idle_conns = 64;
  int pipeline_depth = 4;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--idle-conns" && i + 1 < argc) {
      idle_conns = std::atoi(argv[++i]);
    } else if (arg == "--pipeline-depth" && i + 1 < argc) {
      pipeline_depth = std::atoi(argv[++i]);
    } else if (positional == 0) {
      out_path = arg;
      ++positional;
    } else if (positional == 1) {
      clients = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 2) {
      per_client = std::atoi(arg.c_str());
      ++positional;
    } else {
      std::fprintf(stderr,
                   "usage: server_load [out.json] [clients] "
                   "[requests-per-client] [--idle-conns N] "
                   "[--pipeline-depth D]\n");
      return 2;
    }
  }
  if (pipeline_depth < 1) pipeline_depth = 1;
  if (idle_conns < 0) idle_conns = 0;

  const std::string cmv = WriteTestContainer("/tmp/server_load.cmv");

  // Daemon 1: result cache OFF, so the serial and pipelined phases measure
  // the transport (every request runs the full mining pipeline).
  server::ServerOptions options;
  options.worker_threads = 4;
  options.max_queue = 4;  // small bound so the burst provokes rejections
  options.enable_result_cache = false;
  server::ClassMinerServer daemon(options);
  const util::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf(
      "classminerd on port %d: %d clients x %d requests, depth %d, "
      "%d idle conns\n",
      daemon.port(), clients, per_client, pipeline_depth, idle_conns);

  const PhaseResult serial =
      RunSerialPhase(daemon.port(), cmv, clients, per_client);
  std::printf("serial    ok %zu  p50 %.1f ms  p99 %.1f ms  %.2f q/s\n",
              serial.latencies_ms.size(), serial.p50(), serial.p99(),
              serial.qps());

  // Park idle connections on the reactor for the pipelined phase: they
  // cost fd table entries, not threads.
  std::vector<int> idle_fds;
  for (int i = 0; i < idle_conns; ++i) {
    util::StatusOr<int> fd = server::ConnectTo("127.0.0.1", daemon.port());
    if (fd.ok()) idle_fds.push_back(*fd);
  }
  const PhaseResult pipelined = RunPipelinedPhase(
      daemon.port(), cmv, clients, per_client, pipeline_depth);
  std::printf("pipelined ok %zu  p50 %.1f ms  p99 %.1f ms  %.2f q/s\n",
              pipelined.latencies_ms.size(), pipelined.p50(),
              pipelined.p99(), pipelined.qps());
  for (int fd : idle_fds) server::CloseFd(fd);

  // Deadline phase: impossible 1 ms deadlines must come back
  // kDeadlineExceeded, never hang. (Needs the cache off: a cache hit would
  // answer before the deadline monitor ever saw the request.)
  int deadline_hits = 0;
  {
    server::SessionHello hello;
    hello.user = "deadline";
    hello.clearance = 3;
    util::StatusOr<server::Client> client =
        server::Client::Connect("127.0.0.1", daemon.port(), hello);
    if (client.ok()) {
      for (int i = 0; i < 8; ++i) {
        util::StatusOr<std::string> report = client->CallForReport(
            server::RequestKind::kMine, {cmv, "--fast"}, /*deadline_ms=*/1);
        if (report.status().code() ==
            util::StatusCode::kDeadlineExceeded) {
          ++deadline_hits;
        }
      }
    }
  }

  const server::ServerStats stats = daemon.StatsSnapshot();
  daemon.Stop();
  const server::ServerStats final_stats = daemon.StatsSnapshot();

  // Daemon 2: result cache ON. Pipelined sessions re-mining one container
  // measure cache-hit throughput — the first request runs the pipeline,
  // everything after it is served from the shared result cache.
  server::ServerOptions cached_options = options;
  cached_options.enable_result_cache = true;
  server::ClassMinerServer cached_daemon(cached_options);
  PhaseResult cache_hit;
  server::ServerStats cache_stats;
  const util::Status cached_started = cached_daemon.Start();
  if (cached_started.ok()) {
    cache_hit = RunPipelinedPhase(cached_daemon.port(), cmv, clients,
                                  per_client, pipeline_depth);
    std::printf("cache_hit ok %zu  p50 %.2f ms  p99 %.2f ms  %.2f q/s\n",
                cache_hit.latencies_ms.size(), cache_hit.p50(),
                cache_hit.p99(), cache_hit.qps());
    cache_stats = cached_daemon.StatsSnapshot();
    cached_daemon.Stop();
  } else {
    std::fprintf(stderr, "%s\n", cached_started.ToString().c_str());
  }

  const int failures =
      serial.failures + pipelined.failures + cache_hit.failures;
  std::printf(
      "rejected %llu  deadline %llu  pipelined %llu  streamed %llu  "
      "cache %llu/%llu/%llu  failures %d\n",
      static_cast<unsigned long long>(stats.rejected_admission),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.requests_pipelined),
      static_cast<unsigned long long>(stats.responses_streamed),
      static_cast<unsigned long long>(cache_stats.cache_hits),
      static_cast<unsigned long long>(cache_stats.cache_joined),
      static_cast<unsigned long long>(cache_stats.cache_misses), failures);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"benchmark\": \"bench/server_load.cc (classminerd "
               "multi-client load driver)\",\n");
  std::fprintf(
      out,
      "  \"description\": \"In-process epoll-reactor classminerd serving "
      "%d concurrent sessions, %d compressed-domain mine requests each "
      "(queue bound %d over %d workers). serial: v1 clients, one request "
      "at a time, result cache off. pipelined: v2 sessions with %d "
      "requests in flight while %d idle connections sit on the reactor, "
      "cache off. cache_hit: fresh daemon with the shared result cache "
      "on. deadline: 8 requests carrying an impossible 1 ms deadline. "
      "Latencies are end-to-end per request, including retry backoff.\",\n",
      clients, per_client, options.max_queue, options.worker_threads,
      pipeline_depth, idle_conns);
  std::fprintf(out, "  \"command\": \"./build/bench/server_load\",\n");
  std::fprintf(out, "  \"environment\": {\n");
  std::fprintf(out, "    \"date\": \"2026-08-08\",\n");
  std::fprintf(out, "    \"cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "    \"build_type\": \"Release\",\n");
  std::fprintf(out,
               "    \"note\": \"Loopback TCP, synthetic 17-scene container, "
               "mine --fast (compressed-domain). PR6 thread-per-connection "
               "baseline for the serial shape: p50 7620.05 ms, p99 7855.96 "
               "ms, 1.05 q/s over 64 requests. reader_threads is the "
               "daemon's per-connection read threads (always 0 for the "
               "reactor).\"\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  const auto phase_row = [&](const char* name, const PhaseResult& r,
                             const char* tail) {
    std::fprintf(out,
                 "    { \"name\": \"%s\", \"requests_completed\": %zu, "
                 "\"latency_p50_ms\": %.2f, \"latency_p99_ms\": %.2f, "
                 "\"queries_per_second\": %.2f, \"wall_seconds\": %.2f "
                 "}%s\n",
                 name, r.latencies_ms.size(), r.p50(), r.p99(), r.qps(),
                 r.wall_seconds, tail);
  };
  phase_row("serial_phase", serial, ",");
  phase_row("pipelined_phase", pipelined, ",");
  phase_row("cache_hit_phase", cache_hit, ",");
  std::fprintf(out,
               "    { \"name\": \"deadline_phase\", \"requests_sent\": 8, "
               "\"deadline_requests_refused\": %d }\n",
               deadline_hits);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"idle_connections\": %d,\n", idle_conns);
  std::fprintf(out, "  \"pipeline_depth\": %d,\n", pipeline_depth);
  std::fprintf(out, "  \"client_failures\": %d,\n", failures);
  std::fprintf(out, "  \"rejected_admission\": %llu,\n",
               static_cast<unsigned long long>(stats.rejected_admission));
  std::fprintf(out, "  \"deadline_exceeded\": %llu,\n",
               static_cast<unsigned long long>(stats.deadline_exceeded));
  std::fprintf(out, "  \"requests_pipelined\": %llu,\n",
               static_cast<unsigned long long>(stats.requests_pipelined));
  std::fprintf(out, "  \"reader_threads\": %llu,\n",
               static_cast<unsigned long long>(stats.reader_threads));
  std::fprintf(out, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.cache_hits));
  std::fprintf(out, "  \"cache_joined\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.cache_joined));
  std::fprintf(out, "  \"cache_misses\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.cache_misses));
  std::fprintf(out, "  \"requests_received\": %llu,\n",
               static_cast<unsigned long long>(stats.requests_received));
  std::fprintf(out, "  \"connections_accepted\": %llu,\n",
               static_cast<unsigned long long>(stats.connections_accepted));
  std::fprintf(out, "  \"connections_leaked\": %llu\n",
               static_cast<unsigned long long>(final_stats.connections_active));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

// Multi-client load driver for classminerd: starts the daemon in-process,
// hammers it from concurrent client sessions, and records request latency
// percentiles, throughput, and the observability counters (admission
// rejections, deadline misses) into BENCH_server.json.
//
//   server_load [out.json] [clients] [requests-per-client]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/cmv_pipeline.h"
#include "server/client.h"
#include "server/server.h"
#include "synth/corpus.h"
#include "util/retry.h"

namespace {

using namespace classminer;

std::string WriteTestContainer(const std::string& path) {
  const synth::GeneratedVideo g =
      synth::GenerateVideo(synth::QuickScript(17));
  const codec::CmvFile file = core::PackGeneratedVideo(g);
  const util::Status saved = file.SaveToFile(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    std::abort();
  }
  return path;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const int clients = argc > 2 ? std::atoi(argv[2]) : 8;
  const int per_client = argc > 3 ? std::atoi(argv[3]) : 8;

  const std::string cmv = WriteTestContainer("/tmp/server_load.cmv");

  server::ServerOptions options;
  options.worker_threads = 4;
  options.max_queue = 4;  // small bound so the burst provokes rejections
  server::ClassMinerServer daemon(options);
  const util::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("classminerd on port %d: %d clients x %d requests\n",
              daemon.port(), clients, per_client);

  // Throughput phase: concurrent sessions issuing compressed-domain mines,
  // retrying admission rejections the way a real client would.
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  bench::WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      server::SessionHello hello;
      hello.user = "load" + std::to_string(c);
      hello.clearance = 3;
      util::StatusOr<server::Client> client =
          server::Client::Connect("127.0.0.1", daemon.port(), hello);
      if (!client.ok()) {
        ++failures;
        return;
      }
      util::RetryOptions retry;
      retry.max_attempts = 64;
      retry.initial_backoff_ms = 2.0;
      retry.max_backoff_ms = 200.0;
      retry.jitter_seed = 1000 + static_cast<uint64_t>(c);
      for (int r = 0; r < per_client; ++r) {
        bench::WallTimer timer;
        util::StatusOr<std::string> report = util::RetryOr<std::string>(
            retry, [&]() -> util::StatusOr<std::string> {
              return client->CallForReport(server::RequestKind::kMine,
                                           {cmv, "--fast"});
            });
        if (report.ok()) {
          latencies[static_cast<size_t>(c)].push_back(timer.Seconds() *
                                                      1000.0);
        } else {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.Seconds();

  std::vector<double> all;
  for (const std::vector<double>& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  const double p50 = Percentile(all, 0.50);
  const double p99 = Percentile(all, 0.99);
  const double qps = elapsed > 0 ? all.size() / elapsed : 0.0;

  // Deadline phase: impossible 1 ms deadlines must come back
  // kDeadlineExceeded, never hang.
  int deadline_hits = 0;
  {
    server::SessionHello hello;
    hello.user = "deadline";
    hello.clearance = 3;
    util::StatusOr<server::Client> client =
        server::Client::Connect("127.0.0.1", daemon.port(), hello);
    if (client.ok()) {
      for (int i = 0; i < 8; ++i) {
        util::StatusOr<std::string> report = client->CallForReport(
            server::RequestKind::kMine, {cmv, "--fast"}, /*deadline_ms=*/1);
        if (report.status().code() ==
            util::StatusCode::kDeadlineExceeded) {
          ++deadline_hits;
        }
      }
    }
  }

  const server::ServerStats stats = daemon.StatsSnapshot();
  daemon.Stop();
  const server::ServerStats final_stats = daemon.StatsSnapshot();

  std::printf(
      "ok %zu  p50 %.1f ms  p99 %.1f ms  %.2f q/s  rejected %llu  "
      "deadline %llu  failures %d\n",
      all.size(), p50, p99, qps,
      static_cast<unsigned long long>(stats.rejected_admission),
      static_cast<unsigned long long>(stats.deadline_exceeded), failures.load());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"benchmark\": \"bench/server_load.cc (classminerd "
               "multi-client load driver)\",\n");
  std::fprintf(
      out,
      "  \"description\": \"In-process classminerd serving %d concurrent "
      "client sessions, %d compressed-domain mine requests each, with "
      "util::Retry absorbing admission rejections (queue bound %d over %d "
      "workers); then 8 requests carrying an impossible 1 ms deadline. "
      "Latencies are end-to-end per request, including retry backoff.\",\n",
      clients, per_client, options.max_queue, options.worker_threads);
  std::fprintf(out, "  \"command\": \"./build/bench/server_load\",\n");
  std::fprintf(out, "  \"environment\": {\n");
  std::fprintf(out, "    \"date\": \"2026-08-08\",\n");
  std::fprintf(out, "    \"cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "    \"build_type\": \"Release\",\n");
  std::fprintf(out,
               "    \"note\": \"Loopback TCP, synthetic 17-scene container, "
               "mine --fast (compressed-domain). rejected_admission counts "
               "kUnavailable refusals the clients retried through; "
               "deadline_exceeded counts requests refused or cancelled by "
               "the deadline monitor.\"\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  std::fprintf(out,
               "    { \"name\": \"throughput_phase\", "
               "\"requests_completed\": %zu, \"latency_p50_ms\": %.2f, "
               "\"latency_p99_ms\": %.2f, \"queries_per_second\": %.2f, "
               "\"wall_seconds\": %.2f },\n",
               all.size(), p50, p99, qps, elapsed);
  std::fprintf(out,
               "    { \"name\": \"deadline_phase\", \"requests_sent\": 8, "
               "\"deadline_requests_refused\": %d }\n",
               deadline_hits);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"client_failures\": %d,\n", failures.load());
  std::fprintf(out, "  \"rejected_admission\": %llu,\n",
               static_cast<unsigned long long>(stats.rejected_admission));
  std::fprintf(out, "  \"deadline_exceeded\": %llu,\n",
               static_cast<unsigned long long>(stats.deadline_exceeded));
  std::fprintf(out, "  \"requests_received\": %llu,\n",
               static_cast<unsigned long long>(stats.requests_received));
  std::fprintf(out, "  \"connections_accepted\": %llu,\n",
               static_cast<unsigned long long>(stats.connections_accepted));
  std::fprintf(out, "  \"connections_leaked\": %llu\n",
               static_cast<unsigned long long>(final_stats.connections_active));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return failures.load() == 0 ? 0 : 1;
}

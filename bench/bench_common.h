#ifndef CLASSMINER_BENCH_BENCH_COMMON_H_
#define CLASSMINER_BENCH_BENCH_COMMON_H_

// Shared helpers for the paper-reproduction benches: mine the five-title
// synthetic medical corpus once and expose the per-video results.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/classminer.h"
#include "core/metrics.h"
#include "synth/corpus.h"

namespace classminer::bench {

struct MinedVideo {
  synth::GeneratedVideo input;
  core::MiningResult result;
};

inline std::vector<MinedVideo> MineCorpus(double scale = 1.0,
                                          uint64_t seed = 7,
                                          bool degraded = false) {
  synth::CorpusOptions opts;
  opts.scale = scale;
  opts.seed = seed;
  opts.degraded = degraded;
  std::vector<synth::GeneratedVideo> generated =
      synth::GenerateMedicalCorpus(opts);
  std::vector<core::MiningInput> inputs;
  inputs.reserve(generated.size());
  for (const synth::GeneratedVideo& g : generated) {
    inputs.push_back({&g.video, &g.audio});
  }
  util::StatusOr<std::vector<core::MiningResult>> batch =
      core::MineVideosParallel(inputs, core::MiningOptions());
  if (!batch.ok()) {
    std::fprintf(stderr, "corpus mining failed: %s\n",
                 batch.status().ToString().c_str());
    std::abort();
  }
  std::vector<core::MiningResult>& results = *batch;

  std::vector<MinedVideo> mined;
  for (size_t i = 0; i < generated.size(); ++i) {
    MinedVideo mv;
    mv.result = std::move(results[i]);
    mv.input = std::move(generated[i]);
    std::printf("  mined '%s': %zu shots, %d scenes\n",
                mv.input.video.name().c_str(),
                mv.result.structure.shots.size(),
                mv.result.structure.ActiveSceneCount());
    mined.push_back(std::move(mv));
  }
  return mined;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace classminer::bench

#endif  // CLASSMINER_BENCH_BENCH_COMMON_H_

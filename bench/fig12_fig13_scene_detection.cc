// Reproduces Figs. 12-13: scene detection precision (Eq. 20) and
// compression-rate factor (Eq. 21) for Method A (ClassMiner), Method B
// (Rui et al. table-of-content) and Method C (Lin & Zhang shot grouping),
// plus the Yeung STG baseline as an extension, over the five-title corpus.
//
// Paper shape: A has the best precision (~0.65) and the highest CRF
// (least compression, ~0.086, ~11 shots per scene); C compresses hardest
// but with the worst precision.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/lin_zhang.h"
#include "baselines/rui_toc.h"
#include "baselines/yeung_stg.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace classminer;
  double scale = 1.0;
  bool degraded = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--degraded") {
      degraded = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) scale = 1.0;
    }
  }
  std::printf("=== Figs. 12-13 reproduction: scene detection (corpus scale "
              "%.2f%s) ===\n",
              scale, degraded ? ", degraded" : "");
  const std::vector<bench::MinedVideo> corpus =
      bench::MineCorpus(scale, 7, degraded);

  struct Row {
    const char* name;
    int detected = 0;
    int correct = 0;
    int shots = 0;
  };
  Row rows[4] = {{"A (ClassMiner)"},
                 {"B (Rui ToC)"},
                 {"C (Lin-Zhang)"},
                 {"D (Yeung STG)*"}};

  for (const bench::MinedVideo& mv : corpus) {
    const std::vector<shot::Shot>& shots = mv.result.structure.shots;
    const std::vector<std::vector<int>> method_scenes[4] = {
        core::ScenesAsShotSets(mv.result.structure),
        baselines::RuiTocScenes(shots),
        baselines::LinZhangScenes(shots),
        baselines::YeungStgScenes(shots),
    };
    for (int m = 0; m < 4; ++m) {
      const core::SceneDetectionScore score = core::ScoreSceneDetection(
          shots, method_scenes[m], mv.input.truth);
      rows[m].detected += score.detected_scenes;
      rows[m].correct += score.correct_scenes;
      rows[m].shots += score.total_shots;
    }
  }

  std::printf("\nFig. 12 -- scene detection precision (Eq. 20)\n");
  std::printf("%-16s %10s %10s %12s\n", "method", "detected", "correct",
              "precision");
  for (const Row& r : rows) {
    const double p =
        r.detected > 0 ? static_cast<double>(r.correct) / r.detected : 0.0;
    std::printf("%-16s %10d %10d %12.3f\n", r.name, r.detected, r.correct, p);
  }

  std::printf("\nFig. 13 -- compression rate factor (Eq. 21)\n");
  std::printf("%-16s %10s %10s %12s %16s\n", "method", "scenes", "shots",
              "CRF", "shots/scene");
  for (const Row& r : rows) {
    const double crf =
        r.shots > 0 ? static_cast<double>(r.detected) / r.shots : 0.0;
    const double sps =
        r.detected > 0 ? static_cast<double>(r.shots) / r.detected : 0.0;
    std::printf("%-16s %10d %10d %12.3f %16.1f\n", r.name, r.detected,
                r.shots, crf, sps);
  }
  std::printf("\n(*) extension baseline, not part of the paper's "
              "comparison.\n");
  std::printf("paper: P(A) ~ 0.65 best of A/B/C; CRF(A) ~ 0.086 highest "
              "(least compression), C lowest.\n");
  return 0;
}

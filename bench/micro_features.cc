// Micro-benchmarks for the visual feature substrate: histogram, Tamura
// coarseness, StSim and frame differencing.

#include <benchmark/benchmark.h>

#include "features/frame_diff.h"
#include "features/histogram.h"
#include "features/similarity.h"
#include "features/tamura.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer {
namespace {

media::Image BenchFrame(int w, int h, uint64_t seed) {
  util::Rng rng(seed);
  media::Image img(w, h);
  media::FillGradient(&img, media::Rgb{80, 100, 140}, media::Rgb{30, 40, 60});
  media::FillEllipse(&img, w / 2, h / 2, w / 4, h / 4,
                     media::Rgb{205, 150, 120});
  media::AddNoise(&img, 5, &rng);
  return img;
}

void BM_ColorHistogram(benchmark::State& state) {
  const media::Image img = BenchFrame(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(0)) * 3 / 4,
                                      1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ComputeColorHistogram(img));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(img.pixel_count()));
}
BENCHMARK(BM_ColorHistogram)->Arg(96)->Arg(192)->Arg(384);

void BM_TamuraCoarseness(benchmark::State& state) {
  const media::Image img = BenchFrame(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(0)) * 3 / 4,
                                      2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ComputeTamuraCoarseness(img));
  }
}
BENCHMARK(BM_TamuraCoarseness)->Arg(96)->Arg(192)->Arg(384);

void BM_StSim(benchmark::State& state) {
  const features::ShotFeatures a =
      features::ExtractShotFeatures(BenchFrame(96, 72, 3));
  const features::ShotFeatures b =
      features::ExtractShotFeatures(BenchFrame(96, 72, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::StSim(a, b));
  }
}
BENCHMARK(BM_StSim);

void BM_FrameDifference(benchmark::State& state) {
  const media::Image a = BenchFrame(96, 72, 5);
  const media::Image b = BenchFrame(96, 72, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::FrameDifference(a, b));
  }
}
BENCHMARK(BM_FrameDifference);

// Whole-video difference series with a pool: per-frame histograms fan out,
// the differencing reduction stays serial (bit-identical to 1 thread).
void BM_FrameDifferenceSeriesThreads(benchmark::State& state) {
  media::Video video("bench", 12.0);
  for (int i = 0; i < 240; ++i) {
    video.AppendFrame(BenchFrame(96, 72, static_cast<uint64_t>(i)));
  }
  const int threads = static_cast<int>(state.range(0));
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::FrameDifferenceSeries(
        video, threads > 1 ? &pool : nullptr));
  }
  state.SetItemsProcessed(state.iterations() * video.frame_count());
}
BENCHMARK(BM_FrameDifferenceSeriesThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

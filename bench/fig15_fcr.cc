// Reproduces Fig. 15: frame compression ratio (FCR) of each scalable-skim
// layer over the five-title corpus.
//
// Paper shape: FCR falls from 1.0 at layer 1 (all shots) to ~0.1 at
// layer 4 (representative shots of clustered scenes).

#include <cstdio>

#include "bench/bench_common.h"
#include "skim/skimmer.h"

int main(int argc, char** argv) {
  using namespace classminer;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("=== Fig. 15 reproduction: frame compression ratio (corpus "
              "scale %.2f) ===\n",
              scale);
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(scale);

  std::printf("\n%6s %14s %14s %10s\n", "level", "skim frames",
              "total frames", "FCR");
  for (int level = 1; level <= skim::kSkimLevels; ++level) {
    long skim_frames = 0;
    long total_frames = 0;
    for (const bench::MinedVideo& mv : corpus) {
      const skim::ScalableSkim sk(&mv.result.structure);
      skim_frames += sk.track(level).frame_count;
      total_frames += sk.total_frames();
    }
    std::printf("%6d %14ld %14ld %10.3f\n", level, skim_frames, total_frames,
                static_cast<double>(skim_frames) / total_frames);
  }
  std::printf("\npaper: FCR ~ 1.0 / 0.7 / 0.3 / 0.1 from layer 1 to 4 "
              "(monotone decrease, ~10%% at the top layer).\n");
  return 0;
}

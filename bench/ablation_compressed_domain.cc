// Ablation: pixel-domain vs compressed-domain (DC image) shot detection —
// the design choice behind the paper's "works on MPEG compressed videos"
// claim. Sweeps codec quality and reports detection quality and wall time
// of each path.

#include <cstdio>

#include "bench/bench_common.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "shot/detector.h"

int main() {
  using namespace classminer;
  std::printf("=== Ablation: pixel vs compressed-domain shot detection "
              "===\n");
  const std::vector<synth::VideoScript> scripts =
      synth::MedicalCorpusScripts();
  const synth::GeneratedVideo g = synth::GenerateVideo(scripts[2]);
  const std::vector<int> truth = g.truth.CutPositions();

  // Reference: pixel domain on decoded frames.
  bench::WallTimer pixel_timer;
  shot::ShotDetectionTrace trace;
  shot::DetectShots(g.video, {}, &trace);
  const double pixel_sec = pixel_timer.Seconds();
  const core::CutScore pixel_score = core::ScoreCuts(trace.cuts, truth);
  std::printf("\n%-26s %10s %10s %10s %10s\n", "path", "precision",
              "recall", "seconds", "kB");
  std::printf("%-26s %10.3f %10.3f %10.2f %10s\n", "pixel (decoded frames)",
              pixel_score.precision, pixel_score.recall, pixel_sec, "-");

  for (int quality : {4, 8, 16, 24}) {
    codec::EncoderOptions eopts;
    eopts.quality = quality;
    eopts.gop_size = 12;
    const codec::CmvFile file = codec::EncodeVideo(g.video, eopts);

    bench::WallTimer dc_timer;
    const auto dc = codec::DecodeDcImages(file);
    shot::ShotDetectionTrace dc_trace;
    shot::DetectShotsFromDc(*dc, {}, &dc_trace);
    const double dc_sec = dc_timer.Seconds();
    const core::CutScore score = core::ScoreCuts(dc_trace.cuts, truth);

    char label[64];
    std::snprintf(label, sizeof(label), "DC images (quality %d)", quality);
    std::printf("%-26s %10.3f %10.3f %10.2f %10zu\n", label, score.precision,
                score.recall, dc_sec, file.VideoPayloadBytes() / 1024);
  }
  std::printf("\nexpected: DC-domain detection stays close to pixel-domain "
              "quality while running much faster, degrading gracefully at "
              "very coarse quantisation.\n");
  return 0;
}

// Ablation: shot-detection thresholding strategies across heterogeneous
// material. A fixed global threshold can always be tuned to one video; the
// point of the paper's window-adaptive threshold is that one configuration
// must survive both noisy/dissolve-heavy footage (where low thresholds
// over-cut) and dim low-contrast footage (where high thresholds miss
// cuts). Reports per-condition precision/recall and the combined F1.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "features/frame_diff.h"
#include "shot/detector.h"

namespace {

using namespace classminer;

struct Condition {
  std::string name;
  std::vector<double> diffs;
  std::vector<int> truth;
  int tolerance = 2;
};

Condition MakeCondition(const char* name, synth::VideoScript script) {
  const synth::GeneratedVideo g = synth::GenerateVideo(script);
  Condition c;
  c.name = name;
  c.diffs = features::FrameDifferenceSeries(g.video);
  c.truth = g.truth.CutPositions();
  c.tolerance = script.dissolve_prob > 0.0 ? script.dissolve_frames : 2;
  return c;
}

}  // namespace

int main() {
  std::printf("=== Ablation: shot detection thresholds ===\n");

  const std::vector<synth::VideoScript> scripts =
      synth::MedicalCorpusScripts();
  std::vector<Condition> conditions;
  {
    synth::VideoScript hard = scripts[0];
    hard.dissolve_prob = 0.5;
    hard.flicker = 0.04;
    conditions.push_back(MakeCondition("dissolves+flicker", hard));
  }
  {
    synth::VideoScript dim = scripts[2];
    dim.exposure = 0.45;
    dim.camera_noise = 3;
    conditions.push_back(MakeCondition("dim low-contrast", dim));
  }
  for (const Condition& c : conditions) {
    std::printf("condition '%s': %zu samples, %zu true cuts\n",
                c.name.c_str(), c.diffs.size(), c.truth.size());
  }

  struct Config {
    std::string name;
    shot::ShotDetectorOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"adaptive (paper)", {}});
  {
    Config c{"entropy only", {}};
    c.options.threshold.activity_sigma = 0.0;
    configs.push_back(c);
  }
  {
    Config c{"activity only", {}};
    c.options.threshold.use_entropy = false;
    configs.push_back(c);
  }
  for (double t : {0.10, 0.20, 0.40}) {
    Config c{"fixed " + std::to_string(t).substr(0, 4), {}};
    c.options.threshold.use_entropy = false;
    c.options.threshold.activity_sigma = 0.0;
    c.options.threshold.min_threshold = t;
    configs.push_back(c);
  }

  std::printf("\n%-18s", "strategy");
  for (const Condition& c : conditions) {
    std::printf("  %16s", c.name.substr(0, 16).c_str());
  }
  std::printf("  %11s\n", "combined F1");
  for (const Config& cfg : configs) {
    std::printf("%-18s", cfg.name.c_str());
    int matched = 0, detected = 0, truth_total = 0;
    for (const Condition& cond : conditions) {
      const std::vector<int> cuts =
          shot::DetectCuts(cond.diffs, cfg.options);
      const core::CutScore score =
          core::ScoreCuts(cuts, cond.truth, cond.tolerance);
      std::printf("     %5.2f/%-5.2f", score.precision, score.recall);
      matched += score.matched;
      detected += score.detected_cuts;
      truth_total += score.truth_cuts;
    }
    const double p =
        detected > 0 ? static_cast<double>(matched) / detected : 0.0;
    const double r =
        truth_total > 0 ? static_cast<double>(matched) / truth_total : 0.0;
    const double f1 = (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
    std::printf("  %11.3f\n", f1);
  }
  std::printf("\nexpected: each fixed threshold wins at most one condition; "
              "the adaptive threshold is the best single configuration "
              "across both.\n");
  return 0;
}

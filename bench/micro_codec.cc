// Micro-benchmarks for the CMV codec substrate: DCT, quantised block
// coding, motion estimation, full encode/decode and DC-image extraction.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codec/decoder.h"
#include "codec/dct.h"
#include "codec/encoder.h"
#include "codec/frame_source.h"
#include "codec/motion.h"
#include "codec/quant.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer {
namespace {

media::Video BenchVideo(int frames, int w, int h) {
  util::Rng rng(99);
  media::Video video("bench", 12.0);
  media::Image base(w, h);
  media::FillGradient(&base, media::Rgb{60, 90, 140}, media::Rgb{20, 30, 50});
  media::FillEllipse(&base, w / 2, h / 2, w / 4, h / 4,
                     media::Rgb{205, 150, 120});
  for (int i = 0; i < frames; ++i) {
    media::Image f = media::Translated(base, i, i / 2);
    media::AddNoise(&f, 3, &rng);
    video.AppendFrame(std::move(f));
  }
  return video;
}

void BM_ForwardDct(benchmark::State& state) {
  util::Rng rng(1);
  codec::Block block{};
  for (double& v : block) v = rng.Uniform(-128.0, 128.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::ForwardDct(block));
  }
}
BENCHMARK(BM_ForwardDct);

void BM_BlockCodeRoundTrip(benchmark::State& state) {
  util::Rng rng(2);
  codec::Block freq{};
  for (double& v : freq) v = rng.Uniform(-60.0, 60.0);
  const codec::QuantizedBlock q = codec::Quantize(freq, 8, false);
  for (auto _ : state) {
    codec::BitWriter w;
    codec::EncodeBlock(&w, q, 0);
    const std::vector<uint8_t> bytes = w.Finish();
    codec::BitReader r(bytes);
    codec::QuantizedBlock back{};
    benchmark::DoNotOptimize(codec::DecodeBlock(&r, &back, 0));
  }
}
BENCHMARK(BM_BlockCodeRoundTrip);

void BM_MotionEstimation(benchmark::State& state) {
  util::Rng rng(3);
  codec::Plane ref = codec::Plane::Make(96, 72);
  for (int16_t& s : ref.samples) {
    s = static_cast<int16_t>(rng.UniformInt(0, 255));
  }
  const codec::Plane cur = ref;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::EstimateMotion(cur, ref, 32, 32, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_MotionEstimation)->Arg(3)->Arg(7);

void BM_EncodeVideo(benchmark::State& state) {
  const media::Video video = BenchVideo(static_cast<int>(state.range(0)), 96, 72);
  codec::EncoderOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::EncodeVideo(video, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeVideo)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_DecodeVideo(benchmark::State& state) {
  const media::Video video = BenchVideo(12, 96, 72);
  const codec::CmvFile file = codec::EncodeVideo(video, codec::EncoderOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::DecodeVideo(file));
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_DecodeVideo)->Unit(benchmark::kMillisecond);

// Rep-frame-style sparse access (one frame per 12-frame "shot") through the
// selective FrameSource vs paying for a full DecodeVideo pass. arg 0/1
// selects the mode so both rows share one video. With 8 GOPs and 8 touched
// frames the selective path decodes the same number of GOPs a full decode
// would, but skips nothing-requested GOPs as shots get sparser; on this
// access pattern it measures pure seek+GOP-decode cost vs whole-file cost.
void BM_SelectiveVsFullDecode(benchmark::State& state) {
  const media::Video video = BenchVideo(96, 96, 72);
  const codec::CmvFile file =
      codec::EncodeVideo(video, codec::EncoderOptions());  // gop_size 12
  const bool selective = state.range(0) != 0;
  std::vector<int> rep_frames;
  for (int f = 4; f < file.frame_count(); f += 24) rep_frames.push_back(f);
  int64_t frames_decoded = 0;
  for (auto _ : state) {
    if (selective) {
      auto source = codec::FrameSource::Create(&file);
      for (const int f : rep_frames) {
        benchmark::DoNotOptimize((*source)->GetFrame(f));
      }
      frames_decoded += (*source)->stats().decoded_frames;
    } else {
      auto full = codec::DecodeVideo(file);
      benchmark::DoNotOptimize(full);
      frames_decoded += file.frame_count();
    }
  }
  state.SetItemsProcessed(frames_decoded);
  state.counters["frames_decoded_per_iter"] = static_cast<double>(
      frames_decoded / std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_SelectiveVsFullDecode)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DcImageExtraction(benchmark::State& state) {
  const media::Video video = BenchVideo(12, 96, 72);
  const codec::CmvFile file = codec::EncodeVideo(video, codec::EncoderOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::DecodeDcImages(file));
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_DcImageExtraction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace classminer

BENCHMARK_MAIN();

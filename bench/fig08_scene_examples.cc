// Reproduces Fig. 8 (qualitative): typical detected video scenes. Prints
// each active scene of the corpus with its mined event label, its
// representative group/shots, and the dominant scripted scene kind — the
// textual counterpart of the paper's scene strips ("Presentation",
// "Dialog", "surgery", "Diagnosis", ...).

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace classminer;
  std::printf("=== Fig. 8 reproduction: detected scene examples ===\n");
  const std::vector<bench::MinedVideo> corpus = bench::MineCorpus(0.5);

  for (const bench::MinedVideo& mv : corpus) {
    std::printf("\n--- %s ---\n", mv.input.video.name().c_str());
    const structure::ContentStructure& cs = mv.result.structure;
    for (const events::EventRecord& rec : mv.result.events) {
      const structure::Scene& scene =
          cs.scenes[static_cast<size_t>(rec.scene_index)];
      const synth::SceneKind truth_kind =
          core::DominantTruthKind(cs, scene, mv.input.truth);
      const structure::Group& rep =
          cs.groups[static_cast<size_t>(scene.rep_group)];
      std::printf("scene %2d: mined=%-18s truth=%-18s shots=%2d "
                  "rep-shots=[",
                  scene.index, events::EventTypeName(rec.type),
                  synth::SceneKindName(truth_kind),
                  cs.ShotCountOfScene(scene));
      for (size_t i = 0; i < rep.rep_shots.size(); ++i) {
        std::printf("%s%d", i > 0 ? " " : "", rep.rep_shots[i]);
      }
      std::printf("]\n");
    }
  }
  std::printf("\npaper shape: presentations, dialogs and clinical scenes "
              "are each recovered as coherent shot runs.\n");
  return 0;
}

// Micro-benchmarks for the dispatched hot kernels: CRC-32, 8x8 DCT, HSV
// histogram binning/reductions and macroblock SAD. Run once as-is (the
// detected dispatch level) and once with CLASSMINER_DISABLE_SIMD=1 to
// measure the scalar floor; the process prints the active level up front so
// recorded numbers are attributable.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "codec/dct.h"
#include "codec/motion.h"
#include "features/histogram.h"
#include "media/image.h"
#include "util/cpu.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace classminer {
namespace {

void BM_Crc32(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Dct8x8(benchmark::State& state) {
  util::Rng rng(12);
  codec::Block block{};
  for (double& v : block) v = rng.Uniform(-128.0, 128.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::ForwardDct(block));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Dct8x8);

void BM_InverseDct8x8(benchmark::State& state) {
  util::Rng rng(13);
  codec::Block freq{};
  for (double& v : freq) v = rng.Uniform(-60.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::InverseDct(freq));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InverseDct8x8);

void BM_HistogramBin(benchmark::State& state) {
  // Whole-image histogram: the per-frame cost DetectShots pays. Pixels are
  // random so every HSV branch is live.
  util::Rng rng(14);
  const int w = static_cast<int>(state.range(0));
  const int h = w * 3 / 4;
  media::Image img(w, h);
  for (media::Rgb& p : img.pixels()) {
    p = media::Rgb{static_cast<uint8_t>(rng.UniformInt(0, 255)),
                   static_cast<uint8_t>(rng.UniformInt(0, 255)),
                   static_cast<uint8_t>(rng.UniformInt(0, 255))};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ComputeColorHistogram(img));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(img.pixel_count()));
}
BENCHMARK(BM_HistogramBin)->Arg(176)->Arg(352);

void BM_HistogramIntersection(benchmark::State& state) {
  util::Rng rng(15);
  features::ColorHistogram a{}, b{};
  for (double& v : a) v = rng.Uniform();
  for (double& v : b) v = rng.Uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::HistogramIntersection(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramIntersection);

void BM_MacroblockSad(benchmark::State& state) {
  util::Rng rng(16);
  codec::Plane cur = codec::Plane::Make(176, 144);
  codec::Plane ref = codec::Plane::Make(176, 144);
  for (int16_t& s : cur.samples) {
    s = static_cast<int16_t>(rng.UniformInt(0, 255));
  }
  for (int16_t& s : ref.samples) {
    s = static_cast<int16_t>(rng.UniformInt(0, 255));
  }
  // Interior block with a small displacement: the common case inside
  // EstimateMotion's search loop.
  int64_t sink = 0;
  for (auto _ : state) {
    sink += codec::MacroblockSad(cur, ref, 80, 64, 3, -2);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MacroblockSad);

}  // namespace
}  // namespace classminer

int main(int argc, char** argv) {
  std::printf("dispatch level: %s\n",
              classminer::util::DispatchLevelName(
                  classminer::util::ActiveDispatchLevel()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

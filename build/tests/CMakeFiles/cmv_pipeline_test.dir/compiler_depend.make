# Empty compiler generated dependencies file for cmv_pipeline_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cmv_pipeline_test.dir/cmv_pipeline_test.cc.o"
  "CMakeFiles/cmv_pipeline_test.dir/cmv_pipeline_test.cc.o.d"
  "cmv_pipeline_test"
  "cmv_pipeline_test.pdb"
  "cmv_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmv_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

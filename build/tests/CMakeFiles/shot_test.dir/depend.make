# Empty dependencies file for shot_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/shot_test.dir/shot_test.cc.o"
  "CMakeFiles/shot_test.dir/shot_test.cc.o.d"
  "shot_test"
  "shot_test.pdb"
  "shot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

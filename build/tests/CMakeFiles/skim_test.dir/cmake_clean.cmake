file(REMOVE_RECURSE
  "CMakeFiles/skim_test.dir/skim_test.cc.o"
  "CMakeFiles/skim_test.dir/skim_test.cc.o.d"
  "skim_test"
  "skim_test.pdb"
  "skim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

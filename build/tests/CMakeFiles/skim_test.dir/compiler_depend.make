# Empty compiler generated dependencies file for skim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cues_test.dir/cues_test.cc.o"
  "CMakeFiles/cues_test.dir/cues_test.cc.o.d"
  "cues_test"
  "cues_test.pdb"
  "cues_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cues_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

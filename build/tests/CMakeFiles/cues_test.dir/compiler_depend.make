# Empty compiler generated dependencies file for cues_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/shot_test[1]_include.cmake")
include("/root/repo/build/tests/structure_test[1]_include.cmake")
include("/root/repo/build/tests/cues_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/skim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/cmv_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")

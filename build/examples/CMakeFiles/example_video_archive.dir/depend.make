# Empty dependencies file for example_video_archive.
# This may be replaced when dependencies are built.

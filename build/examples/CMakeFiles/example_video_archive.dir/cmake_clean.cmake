file(REMOVE_RECURSE
  "CMakeFiles/example_video_archive.dir/video_archive.cpp.o"
  "CMakeFiles/example_video_archive.dir/video_archive.cpp.o.d"
  "example_video_archive"
  "example_video_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

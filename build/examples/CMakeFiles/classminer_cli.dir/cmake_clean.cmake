file(REMOVE_RECURSE
  "CMakeFiles/classminer_cli.dir/classminer_cli.cpp.o"
  "CMakeFiles/classminer_cli.dir/classminer_cli.cpp.o.d"
  "classminer"
  "classminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classminer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

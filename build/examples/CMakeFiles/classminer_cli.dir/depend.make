# Empty dependencies file for classminer_cli.
# This may be replaced when dependencies are built.

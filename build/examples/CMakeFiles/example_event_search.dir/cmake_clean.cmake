file(REMOVE_RECURSE
  "CMakeFiles/example_event_search.dir/event_search.cpp.o"
  "CMakeFiles/example_event_search.dir/event_search.cpp.o.d"
  "example_event_search"
  "example_event_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_event_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

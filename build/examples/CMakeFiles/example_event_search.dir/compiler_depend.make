# Empty compiler generated dependencies file for example_event_search.
# This may be replaced when dependencies are built.

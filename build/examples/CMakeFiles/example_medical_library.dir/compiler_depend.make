# Empty compiler generated dependencies file for example_medical_library.
# This may be replaced when dependencies are built.

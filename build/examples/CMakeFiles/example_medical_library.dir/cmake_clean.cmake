file(REMOVE_RECURSE
  "CMakeFiles/example_medical_library.dir/medical_library.cpp.o"
  "CMakeFiles/example_medical_library.dir/medical_library.cpp.o.d"
  "example_medical_library"
  "example_medical_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_medical_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_skim_browser.
# This may be replaced when dependencies are built.

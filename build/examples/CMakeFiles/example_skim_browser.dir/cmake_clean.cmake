file(REMOVE_RECURSE
  "CMakeFiles/example_skim_browser.dir/skim_browser.cpp.o"
  "CMakeFiles/example_skim_browser.dir/skim_browser.cpp.o.d"
  "example_skim_browser"
  "example_skim_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skim_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/audio_generator.cc" "src/CMakeFiles/cm_synth.dir/synth/audio_generator.cc.o" "gcc" "src/CMakeFiles/cm_synth.dir/synth/audio_generator.cc.o.d"
  "/root/repo/src/synth/corpus.cc" "src/CMakeFiles/cm_synth.dir/synth/corpus.cc.o" "gcc" "src/CMakeFiles/cm_synth.dir/synth/corpus.cc.o.d"
  "/root/repo/src/synth/ground_truth.cc" "src/CMakeFiles/cm_synth.dir/synth/ground_truth.cc.o" "gcc" "src/CMakeFiles/cm_synth.dir/synth/ground_truth.cc.o.d"
  "/root/repo/src/synth/video_generator.cc" "src/CMakeFiles/cm_synth.dir/synth/video_generator.cc.o" "gcc" "src/CMakeFiles/cm_synth.dir/synth/video_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

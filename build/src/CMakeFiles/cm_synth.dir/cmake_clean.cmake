file(REMOVE_RECURSE
  "CMakeFiles/cm_synth.dir/synth/audio_generator.cc.o"
  "CMakeFiles/cm_synth.dir/synth/audio_generator.cc.o.d"
  "CMakeFiles/cm_synth.dir/synth/corpus.cc.o"
  "CMakeFiles/cm_synth.dir/synth/corpus.cc.o.d"
  "CMakeFiles/cm_synth.dir/synth/ground_truth.cc.o"
  "CMakeFiles/cm_synth.dir/synth/ground_truth.cc.o.d"
  "CMakeFiles/cm_synth.dir/synth/video_generator.cc.o"
  "CMakeFiles/cm_synth.dir/synth/video_generator.cc.o.d"
  "libcm_synth.a"
  "libcm_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cm_synth.
# This may be replaced when dependencies are built.

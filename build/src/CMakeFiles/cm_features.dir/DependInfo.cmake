
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/frame_diff.cc" "src/CMakeFiles/cm_features.dir/features/frame_diff.cc.o" "gcc" "src/CMakeFiles/cm_features.dir/features/frame_diff.cc.o.d"
  "/root/repo/src/features/histogram.cc" "src/CMakeFiles/cm_features.dir/features/histogram.cc.o" "gcc" "src/CMakeFiles/cm_features.dir/features/histogram.cc.o.d"
  "/root/repo/src/features/similarity.cc" "src/CMakeFiles/cm_features.dir/features/similarity.cc.o" "gcc" "src/CMakeFiles/cm_features.dir/features/similarity.cc.o.d"
  "/root/repo/src/features/tamura.cc" "src/CMakeFiles/cm_features.dir/features/tamura.cc.o" "gcc" "src/CMakeFiles/cm_features.dir/features/tamura.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcm_features.a"
)

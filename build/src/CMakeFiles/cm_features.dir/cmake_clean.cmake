file(REMOVE_RECURSE
  "CMakeFiles/cm_features.dir/features/frame_diff.cc.o"
  "CMakeFiles/cm_features.dir/features/frame_diff.cc.o.d"
  "CMakeFiles/cm_features.dir/features/histogram.cc.o"
  "CMakeFiles/cm_features.dir/features/histogram.cc.o.d"
  "CMakeFiles/cm_features.dir/features/similarity.cc.o"
  "CMakeFiles/cm_features.dir/features/similarity.cc.o.d"
  "CMakeFiles/cm_features.dir/features/tamura.cc.o"
  "CMakeFiles/cm_features.dir/features/tamura.cc.o.d"
  "libcm_features.a"
  "libcm_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cm_shot.dir/shot/detector.cc.o"
  "CMakeFiles/cm_shot.dir/shot/detector.cc.o.d"
  "CMakeFiles/cm_shot.dir/shot/rep_frame.cc.o"
  "CMakeFiles/cm_shot.dir/shot/rep_frame.cc.o.d"
  "CMakeFiles/cm_shot.dir/shot/threshold.cc.o"
  "CMakeFiles/cm_shot.dir/shot/threshold.cc.o.d"
  "libcm_shot.a"
  "libcm_shot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_shot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cm_shot.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shot/detector.cc" "src/CMakeFiles/cm_shot.dir/shot/detector.cc.o" "gcc" "src/CMakeFiles/cm_shot.dir/shot/detector.cc.o.d"
  "/root/repo/src/shot/rep_frame.cc" "src/CMakeFiles/cm_shot.dir/shot/rep_frame.cc.o" "gcc" "src/CMakeFiles/cm_shot.dir/shot/rep_frame.cc.o.d"
  "/root/repo/src/shot/threshold.cc" "src/CMakeFiles/cm_shot.dir/shot/threshold.cc.o" "gcc" "src/CMakeFiles/cm_shot.dir/shot/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcm_shot.a"
)

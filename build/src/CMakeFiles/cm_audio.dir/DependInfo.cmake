
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/audio_buffer.cc" "src/CMakeFiles/cm_audio.dir/audio/audio_buffer.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/audio_buffer.cc.o.d"
  "/root/repo/src/audio/bic.cc" "src/CMakeFiles/cm_audio.dir/audio/bic.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/bic.cc.o.d"
  "/root/repo/src/audio/features.cc" "src/CMakeFiles/cm_audio.dir/audio/features.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/features.cc.o.d"
  "/root/repo/src/audio/gmm.cc" "src/CMakeFiles/cm_audio.dir/audio/gmm.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/gmm.cc.o.d"
  "/root/repo/src/audio/mfcc.cc" "src/CMakeFiles/cm_audio.dir/audio/mfcc.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/mfcc.cc.o.d"
  "/root/repo/src/audio/speaker_segmenter.cc" "src/CMakeFiles/cm_audio.dir/audio/speaker_segmenter.cc.o" "gcc" "src/CMakeFiles/cm_audio.dir/audio/speaker_segmenter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

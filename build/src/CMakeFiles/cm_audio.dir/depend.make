# Empty dependencies file for cm_audio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cm_audio.dir/audio/audio_buffer.cc.o"
  "CMakeFiles/cm_audio.dir/audio/audio_buffer.cc.o.d"
  "CMakeFiles/cm_audio.dir/audio/bic.cc.o"
  "CMakeFiles/cm_audio.dir/audio/bic.cc.o.d"
  "CMakeFiles/cm_audio.dir/audio/features.cc.o"
  "CMakeFiles/cm_audio.dir/audio/features.cc.o.d"
  "CMakeFiles/cm_audio.dir/audio/gmm.cc.o"
  "CMakeFiles/cm_audio.dir/audio/gmm.cc.o.d"
  "CMakeFiles/cm_audio.dir/audio/mfcc.cc.o"
  "CMakeFiles/cm_audio.dir/audio/mfcc.cc.o.d"
  "CMakeFiles/cm_audio.dir/audio/speaker_segmenter.cc.o"
  "CMakeFiles/cm_audio.dir/audio/speaker_segmenter.cc.o.d"
  "libcm_audio.a"
  "libcm_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcm_audio.a"
)

file(REMOVE_RECURSE
  "libcm_index.a"
)

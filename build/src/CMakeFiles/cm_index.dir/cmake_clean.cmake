file(REMOVE_RECURSE
  "CMakeFiles/cm_index.dir/index/access_control.cc.o"
  "CMakeFiles/cm_index.dir/index/access_control.cc.o.d"
  "CMakeFiles/cm_index.dir/index/browser.cc.o"
  "CMakeFiles/cm_index.dir/index/browser.cc.o.d"
  "CMakeFiles/cm_index.dir/index/classifier.cc.o"
  "CMakeFiles/cm_index.dir/index/classifier.cc.o.d"
  "CMakeFiles/cm_index.dir/index/concept.cc.o"
  "CMakeFiles/cm_index.dir/index/concept.cc.o.d"
  "CMakeFiles/cm_index.dir/index/database.cc.o"
  "CMakeFiles/cm_index.dir/index/database.cc.o.d"
  "CMakeFiles/cm_index.dir/index/hier_index.cc.o"
  "CMakeFiles/cm_index.dir/index/hier_index.cc.o.d"
  "CMakeFiles/cm_index.dir/index/linear_index.cc.o"
  "CMakeFiles/cm_index.dir/index/linear_index.cc.o.d"
  "CMakeFiles/cm_index.dir/index/persist.cc.o"
  "CMakeFiles/cm_index.dir/index/persist.cc.o.d"
  "CMakeFiles/cm_index.dir/index/query.cc.o"
  "CMakeFiles/cm_index.dir/index/query.cc.o.d"
  "libcm_index.a"
  "libcm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cm_index.
# This may be replaced when dependencies are built.

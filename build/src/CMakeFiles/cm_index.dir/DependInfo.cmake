
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/access_control.cc" "src/CMakeFiles/cm_index.dir/index/access_control.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/access_control.cc.o.d"
  "/root/repo/src/index/browser.cc" "src/CMakeFiles/cm_index.dir/index/browser.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/browser.cc.o.d"
  "/root/repo/src/index/classifier.cc" "src/CMakeFiles/cm_index.dir/index/classifier.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/classifier.cc.o.d"
  "/root/repo/src/index/concept.cc" "src/CMakeFiles/cm_index.dir/index/concept.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/concept.cc.o.d"
  "/root/repo/src/index/database.cc" "src/CMakeFiles/cm_index.dir/index/database.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/database.cc.o.d"
  "/root/repo/src/index/hier_index.cc" "src/CMakeFiles/cm_index.dir/index/hier_index.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/hier_index.cc.o.d"
  "/root/repo/src/index/linear_index.cc" "src/CMakeFiles/cm_index.dir/index/linear_index.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/linear_index.cc.o.d"
  "/root/repo/src/index/persist.cc" "src/CMakeFiles/cm_index.dir/index/persist.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/persist.cc.o.d"
  "/root/repo/src/index/query.cc" "src/CMakeFiles/cm_index.dir/index/query.cc.o" "gcc" "src/CMakeFiles/cm_index.dir/index/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_shot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_cues.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cues/blood.cc" "src/CMakeFiles/cm_cues.dir/cues/blood.cc.o" "gcc" "src/CMakeFiles/cm_cues.dir/cues/blood.cc.o.d"
  "/root/repo/src/cues/cue_extractor.cc" "src/CMakeFiles/cm_cues.dir/cues/cue_extractor.cc.o" "gcc" "src/CMakeFiles/cm_cues.dir/cues/cue_extractor.cc.o.d"
  "/root/repo/src/cues/face.cc" "src/CMakeFiles/cm_cues.dir/cues/face.cc.o" "gcc" "src/CMakeFiles/cm_cues.dir/cues/face.cc.o.d"
  "/root/repo/src/cues/skin.cc" "src/CMakeFiles/cm_cues.dir/cues/skin.cc.o" "gcc" "src/CMakeFiles/cm_cues.dir/cues/skin.cc.o.d"
  "/root/repo/src/cues/special_frames.cc" "src/CMakeFiles/cm_cues.dir/cues/special_frames.cc.o" "gcc" "src/CMakeFiles/cm_cues.dir/cues/special_frames.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cm_cues.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cm_cues.dir/cues/blood.cc.o"
  "CMakeFiles/cm_cues.dir/cues/blood.cc.o.d"
  "CMakeFiles/cm_cues.dir/cues/cue_extractor.cc.o"
  "CMakeFiles/cm_cues.dir/cues/cue_extractor.cc.o.d"
  "CMakeFiles/cm_cues.dir/cues/face.cc.o"
  "CMakeFiles/cm_cues.dir/cues/face.cc.o.d"
  "CMakeFiles/cm_cues.dir/cues/skin.cc.o"
  "CMakeFiles/cm_cues.dir/cues/skin.cc.o.d"
  "CMakeFiles/cm_cues.dir/cues/special_frames.cc.o"
  "CMakeFiles/cm_cues.dir/cues/special_frames.cc.o.d"
  "libcm_cues.a"
  "libcm_cues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_cues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

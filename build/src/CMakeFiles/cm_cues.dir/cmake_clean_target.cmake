file(REMOVE_RECURSE
  "libcm_cues.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cm_baselines.dir/baselines/lin_zhang.cc.o"
  "CMakeFiles/cm_baselines.dir/baselines/lin_zhang.cc.o.d"
  "CMakeFiles/cm_baselines.dir/baselines/rui_toc.cc.o"
  "CMakeFiles/cm_baselines.dir/baselines/rui_toc.cc.o.d"
  "CMakeFiles/cm_baselines.dir/baselines/yeung_stg.cc.o"
  "CMakeFiles/cm_baselines.dir/baselines/yeung_stg.cc.o.d"
  "libcm_baselines.a"
  "libcm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

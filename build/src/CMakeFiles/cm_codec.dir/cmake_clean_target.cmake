file(REMOVE_RECURSE
  "libcm_codec.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cc" "src/CMakeFiles/cm_codec.dir/codec/bitstream.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/bitstream.cc.o.d"
  "/root/repo/src/codec/container.cc" "src/CMakeFiles/cm_codec.dir/codec/container.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/container.cc.o.d"
  "/root/repo/src/codec/dct.cc" "src/CMakeFiles/cm_codec.dir/codec/dct.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/dct.cc.o.d"
  "/root/repo/src/codec/decoder.cc" "src/CMakeFiles/cm_codec.dir/codec/decoder.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/decoder.cc.o.d"
  "/root/repo/src/codec/encoder.cc" "src/CMakeFiles/cm_codec.dir/codec/encoder.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/encoder.cc.o.d"
  "/root/repo/src/codec/motion.cc" "src/CMakeFiles/cm_codec.dir/codec/motion.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/motion.cc.o.d"
  "/root/repo/src/codec/quant.cc" "src/CMakeFiles/cm_codec.dir/codec/quant.cc.o" "gcc" "src/CMakeFiles/cm_codec.dir/codec/quant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

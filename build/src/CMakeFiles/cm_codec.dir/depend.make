# Empty dependencies file for cm_codec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cm_codec.dir/codec/bitstream.cc.o"
  "CMakeFiles/cm_codec.dir/codec/bitstream.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/container.cc.o"
  "CMakeFiles/cm_codec.dir/codec/container.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/dct.cc.o"
  "CMakeFiles/cm_codec.dir/codec/dct.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/decoder.cc.o"
  "CMakeFiles/cm_codec.dir/codec/decoder.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/encoder.cc.o"
  "CMakeFiles/cm_codec.dir/codec/encoder.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/motion.cc.o"
  "CMakeFiles/cm_codec.dir/codec/motion.cc.o.d"
  "CMakeFiles/cm_codec.dir/codec/quant.cc.o"
  "CMakeFiles/cm_codec.dir/codec/quant.cc.o.d"
  "libcm_codec.a"
  "libcm_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cm_core.dir/core/classminer.cc.o"
  "CMakeFiles/cm_core.dir/core/classminer.cc.o.d"
  "CMakeFiles/cm_core.dir/core/cmv_pipeline.cc.o"
  "CMakeFiles/cm_core.dir/core/cmv_pipeline.cc.o.d"
  "CMakeFiles/cm_core.dir/core/metrics.cc.o"
  "CMakeFiles/cm_core.dir/core/metrics.cc.o.d"
  "libcm_core.a"
  "libcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

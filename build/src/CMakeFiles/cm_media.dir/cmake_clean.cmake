file(REMOVE_RECURSE
  "CMakeFiles/cm_media.dir/media/color.cc.o"
  "CMakeFiles/cm_media.dir/media/color.cc.o.d"
  "CMakeFiles/cm_media.dir/media/draw.cc.o"
  "CMakeFiles/cm_media.dir/media/draw.cc.o.d"
  "CMakeFiles/cm_media.dir/media/image.cc.o"
  "CMakeFiles/cm_media.dir/media/image.cc.o.d"
  "CMakeFiles/cm_media.dir/media/morphology.cc.o"
  "CMakeFiles/cm_media.dir/media/morphology.cc.o.d"
  "CMakeFiles/cm_media.dir/media/ppm.cc.o"
  "CMakeFiles/cm_media.dir/media/ppm.cc.o.d"
  "CMakeFiles/cm_media.dir/media/region.cc.o"
  "CMakeFiles/cm_media.dir/media/region.cc.o.d"
  "CMakeFiles/cm_media.dir/media/video.cc.o"
  "CMakeFiles/cm_media.dir/media/video.cc.o.d"
  "libcm_media.a"
  "libcm_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

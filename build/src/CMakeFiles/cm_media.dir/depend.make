# Empty dependencies file for cm_media.
# This may be replaced when dependencies are built.

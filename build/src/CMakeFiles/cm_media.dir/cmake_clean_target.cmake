file(REMOVE_RECURSE
  "libcm_media.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/color.cc" "src/CMakeFiles/cm_media.dir/media/color.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/color.cc.o.d"
  "/root/repo/src/media/draw.cc" "src/CMakeFiles/cm_media.dir/media/draw.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/draw.cc.o.d"
  "/root/repo/src/media/image.cc" "src/CMakeFiles/cm_media.dir/media/image.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/image.cc.o.d"
  "/root/repo/src/media/morphology.cc" "src/CMakeFiles/cm_media.dir/media/morphology.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/morphology.cc.o.d"
  "/root/repo/src/media/ppm.cc" "src/CMakeFiles/cm_media.dir/media/ppm.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/ppm.cc.o.d"
  "/root/repo/src/media/region.cc" "src/CMakeFiles/cm_media.dir/media/region.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/region.cc.o.d"
  "/root/repo/src/media/video.cc" "src/CMakeFiles/cm_media.dir/media/video.cc.o" "gcc" "src/CMakeFiles/cm_media.dir/media/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

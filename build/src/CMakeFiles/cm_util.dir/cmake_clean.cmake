file(REMOVE_RECURSE
  "CMakeFiles/cm_util.dir/util/fft.cc.o"
  "CMakeFiles/cm_util.dir/util/fft.cc.o.d"
  "CMakeFiles/cm_util.dir/util/logging.cc.o"
  "CMakeFiles/cm_util.dir/util/logging.cc.o.d"
  "CMakeFiles/cm_util.dir/util/mathutil.cc.o"
  "CMakeFiles/cm_util.dir/util/mathutil.cc.o.d"
  "CMakeFiles/cm_util.dir/util/matrix.cc.o"
  "CMakeFiles/cm_util.dir/util/matrix.cc.o.d"
  "CMakeFiles/cm_util.dir/util/rng.cc.o"
  "CMakeFiles/cm_util.dir/util/rng.cc.o.d"
  "CMakeFiles/cm_util.dir/util/serial.cc.o"
  "CMakeFiles/cm_util.dir/util/serial.cc.o.d"
  "CMakeFiles/cm_util.dir/util/status.cc.o"
  "CMakeFiles/cm_util.dir/util/status.cc.o.d"
  "CMakeFiles/cm_util.dir/util/threadpool.cc.o"
  "CMakeFiles/cm_util.dir/util/threadpool.cc.o.d"
  "libcm_util.a"
  "libcm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cm_events.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcm_events.a"
)

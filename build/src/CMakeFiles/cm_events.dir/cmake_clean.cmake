file(REMOVE_RECURSE
  "CMakeFiles/cm_events.dir/events/event_miner.cc.o"
  "CMakeFiles/cm_events.dir/events/event_miner.cc.o.d"
  "libcm_events.a"
  "libcm_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

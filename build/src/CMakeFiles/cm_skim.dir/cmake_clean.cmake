file(REMOVE_RECURSE
  "CMakeFiles/cm_skim.dir/skim/evaluator.cc.o"
  "CMakeFiles/cm_skim.dir/skim/evaluator.cc.o.d"
  "CMakeFiles/cm_skim.dir/skim/playback.cc.o"
  "CMakeFiles/cm_skim.dir/skim/playback.cc.o.d"
  "CMakeFiles/cm_skim.dir/skim/skimmer.cc.o"
  "CMakeFiles/cm_skim.dir/skim/skimmer.cc.o.d"
  "CMakeFiles/cm_skim.dir/skim/storyboard.cc.o"
  "CMakeFiles/cm_skim.dir/skim/storyboard.cc.o.d"
  "CMakeFiles/cm_skim.dir/skim/summary.cc.o"
  "CMakeFiles/cm_skim.dir/skim/summary.cc.o.d"
  "libcm_skim.a"
  "libcm_skim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_skim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cm_skim.
# This may be replaced when dependencies are built.

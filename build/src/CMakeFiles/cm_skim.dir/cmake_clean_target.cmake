file(REMOVE_RECURSE
  "libcm_skim.a"
)

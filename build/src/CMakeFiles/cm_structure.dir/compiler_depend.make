# Empty compiler generated dependencies file for cm_structure.
# This may be replaced when dependencies are built.

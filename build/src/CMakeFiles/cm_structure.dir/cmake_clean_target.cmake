file(REMOVE_RECURSE
  "libcm_structure.a"
)

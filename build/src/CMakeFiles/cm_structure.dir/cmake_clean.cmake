file(REMOVE_RECURSE
  "CMakeFiles/cm_structure.dir/structure/content_structure.cc.o"
  "CMakeFiles/cm_structure.dir/structure/content_structure.cc.o.d"
  "CMakeFiles/cm_structure.dir/structure/group_classify.cc.o"
  "CMakeFiles/cm_structure.dir/structure/group_classify.cc.o.d"
  "CMakeFiles/cm_structure.dir/structure/group_detector.cc.o"
  "CMakeFiles/cm_structure.dir/structure/group_detector.cc.o.d"
  "CMakeFiles/cm_structure.dir/structure/group_similarity.cc.o"
  "CMakeFiles/cm_structure.dir/structure/group_similarity.cc.o.d"
  "CMakeFiles/cm_structure.dir/structure/scene_cluster.cc.o"
  "CMakeFiles/cm_structure.dir/structure/scene_cluster.cc.o.d"
  "CMakeFiles/cm_structure.dir/structure/scene_detector.cc.o"
  "CMakeFiles/cm_structure.dir/structure/scene_detector.cc.o.d"
  "libcm_structure.a"
  "libcm_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

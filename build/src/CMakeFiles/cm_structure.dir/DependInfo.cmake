
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structure/content_structure.cc" "src/CMakeFiles/cm_structure.dir/structure/content_structure.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/content_structure.cc.o.d"
  "/root/repo/src/structure/group_classify.cc" "src/CMakeFiles/cm_structure.dir/structure/group_classify.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/group_classify.cc.o.d"
  "/root/repo/src/structure/group_detector.cc" "src/CMakeFiles/cm_structure.dir/structure/group_detector.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/group_detector.cc.o.d"
  "/root/repo/src/structure/group_similarity.cc" "src/CMakeFiles/cm_structure.dir/structure/group_similarity.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/group_similarity.cc.o.d"
  "/root/repo/src/structure/scene_cluster.cc" "src/CMakeFiles/cm_structure.dir/structure/scene_cluster.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/scene_cluster.cc.o.d"
  "/root/repo/src/structure/scene_detector.cc" "src/CMakeFiles/cm_structure.dir/structure/scene_detector.cc.o" "gcc" "src/CMakeFiles/cm_structure.dir/structure/scene_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_shot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

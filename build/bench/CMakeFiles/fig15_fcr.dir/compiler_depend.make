# Empty compiler generated dependencies file for fig15_fcr.
# This may be replaced when dependencies are built.

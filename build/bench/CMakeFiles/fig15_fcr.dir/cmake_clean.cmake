file(REMOVE_RECURSE
  "CMakeFiles/fig15_fcr.dir/fig15_fcr.cc.o"
  "CMakeFiles/fig15_fcr.dir/fig15_fcr.cc.o.d"
  "fig15_fcr"
  "fig15_fcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_audio.cc" "bench/CMakeFiles/micro_audio.dir/micro_audio.cc.o" "gcc" "bench/CMakeFiles/micro_audio.dir/micro_audio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_skim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_cues.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_shot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/micro_audio.dir/micro_audio.cc.o"
  "CMakeFiles/micro_audio.dir/micro_audio.cc.o.d"
  "micro_audio"
  "micro_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_audio.
# This may be replaced when dependencies are built.

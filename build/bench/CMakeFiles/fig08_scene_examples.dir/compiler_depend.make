# Empty compiler generated dependencies file for fig08_scene_examples.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_scene_examples.dir/fig08_scene_examples.cc.o"
  "CMakeFiles/fig08_scene_examples.dir/fig08_scene_examples.cc.o.d"
  "fig08_scene_examples"
  "fig08_scene_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scene_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

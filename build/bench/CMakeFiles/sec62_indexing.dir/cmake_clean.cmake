file(REMOVE_RECURSE
  "CMakeFiles/sec62_indexing.dir/sec62_indexing.cc.o"
  "CMakeFiles/sec62_indexing.dir/sec62_indexing.cc.o.d"
  "sec62_indexing"
  "sec62_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec62_indexing.
# This may be replaced when dependencies are built.

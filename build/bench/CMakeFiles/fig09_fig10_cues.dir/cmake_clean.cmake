file(REMOVE_RECURSE
  "CMakeFiles/fig09_fig10_cues.dir/fig09_fig10_cues.cc.o"
  "CMakeFiles/fig09_fig10_cues.dir/fig09_fig10_cues.cc.o.d"
  "fig09_fig10_cues"
  "fig09_fig10_cues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fig10_cues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig09_fig10_cues.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig05_shot_detection.dir/fig05_shot_detection.cc.o"
  "CMakeFiles/fig05_shot_detection.dir/fig05_shot_detection.cc.o.d"
  "fig05_shot_detection"
  "fig05_shot_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_shot_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05_shot_detection.
# This may be replaced when dependencies are built.

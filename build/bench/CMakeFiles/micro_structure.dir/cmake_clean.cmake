file(REMOVE_RECURSE
  "CMakeFiles/micro_structure.dir/micro_structure.cc.o"
  "CMakeFiles/micro_structure.dir/micro_structure.cc.o.d"
  "micro_structure"
  "micro_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_structure.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_event_mining.dir/table1_event_mining.cc.o"
  "CMakeFiles/table1_event_mining.dir/table1_event_mining.cc.o.d"
  "table1_event_mining"
  "table1_event_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_event_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_event_mining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_compressed_domain.dir/ablation_compressed_domain.cc.o"
  "CMakeFiles/ablation_compressed_domain.dir/ablation_compressed_domain.cc.o.d"
  "ablation_compressed_domain"
  "ablation_compressed_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compressed_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

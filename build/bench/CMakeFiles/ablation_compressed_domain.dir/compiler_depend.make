# Empty compiler generated dependencies file for ablation_compressed_domain.
# This may be replaced when dependencies are built.

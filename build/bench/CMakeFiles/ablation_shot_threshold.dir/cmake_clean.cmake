file(REMOVE_RECURSE
  "CMakeFiles/ablation_shot_threshold.dir/ablation_shot_threshold.cc.o"
  "CMakeFiles/ablation_shot_threshold.dir/ablation_shot_threshold.cc.o.d"
  "ablation_shot_threshold"
  "ablation_shot_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shot_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_fig13_scene_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_skim_scores.dir/fig14_skim_scores.cc.o"
  "CMakeFiles/fig14_skim_scores.dir/fig14_skim_scores.cc.o.d"
  "fig14_skim_scores"
  "fig14_skim_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_skim_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

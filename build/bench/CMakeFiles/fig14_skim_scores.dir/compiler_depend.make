# Empty compiler generated dependencies file for fig14_skim_scores.
# This may be replaced when dependencies are built.

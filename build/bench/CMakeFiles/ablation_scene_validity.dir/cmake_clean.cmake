file(REMOVE_RECURSE
  "CMakeFiles/ablation_scene_validity.dir/ablation_scene_validity.cc.o"
  "CMakeFiles/ablation_scene_validity.dir/ablation_scene_validity.cc.o.d"
  "ablation_scene_validity"
  "ablation_scene_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scene_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

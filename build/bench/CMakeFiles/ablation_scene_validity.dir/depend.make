# Empty dependencies file for ablation_scene_validity.
# This may be replaced when dependencies are built.
